//! Regenerates every figure and table of the paper's evaluation in one
//! go, writing TSV series to `results/` and a summary to stdout.
//!
//! The managed and unmanaged 3000 s runs execute once, in parallel, and
//! feed Figures 5–9; Table 1 runs its two constant-load experiments
//! afterwards.

use jade::config::SystemConfig;
use jade::experiment::run_managed_and_unmanaged;
use jade::system::ManagedTier;
use jade_bench::{print_replica_transitions, print_run_summary, write_series};
use jade_sim::SimDuration;

fn main() {
    println!("=== Regenerating all figures and tables (paper §5.2) ===\n");
    let horizon = SimDuration::from_secs(3000);
    let (managed, unmanaged) = run_managed_and_unmanaged(
        SystemConfig::paper_managed(),
        SystemConfig::paper_unmanaged(),
        horizon,
    );
    print_run_summary("managed  ", &managed);
    print_run_summary("unmanaged", &unmanaged);

    println!("\n--- Figure 5 ---");
    print_replica_transitions(&managed);
    write_series("fig5_replicas_db", &managed.series("replicas.db"));
    write_series("fig5_replicas_app", &managed.series("replicas.app"));
    write_series("fig5_clients", &managed.series("clients"));
    println!(
        "peak replicas: db={} (paper 3), app={} (paper 2)",
        managed.max_replicas(ManagedTier::Database),
        managed.max_replicas(ManagedTier::Application)
    );

    println!("\n--- Figures 6 & 7 ---");
    write_series("fig6_cpu_managed", &managed.series("cpu.db.smoothed"));
    write_series("fig6_cpu_unmanaged", &unmanaged.series("cpu.db.smoothed"));
    write_series("fig6_backends", &managed.series("replicas.db"));
    write_series("fig7_cpu_managed", &managed.series("cpu.app.smoothed"));
    write_series("fig7_cpu_unmanaged", &unmanaged.series("cpu.app.smoothed"));
    write_series("fig7_servers", &managed.series("replicas.app"));
    let peak = |out: &jade::experiment::ExperimentOutput, s: &str| {
        out.series(s).iter().map(|&(_, v)| v).fold(0.0f64, f64::max)
    };
    println!(
        "unmanaged peaks: db CPU {:.2} (saturates), app CPU {:.2} (stays moderate)",
        peak(&unmanaged, "cpu.db.smoothed"),
        peak(&unmanaged, "cpu.app.smoothed")
    );

    println!("\n--- Figures 8 & 9 ---");
    let lat = |out: &jade::experiment::ExperimentOutput| -> Vec<(f64, f64)> {
        out.app
            .stats
            .latency_series()
            .into_iter()
            .map(|(t, v)| (t.as_secs_f64(), v))
            .collect()
    };
    write_series("fig8_latency_ms", &lat(&unmanaged));
    write_series("fig8_workload", &unmanaged.series("clients"));
    write_series("fig9_latency_ms", &lat(&managed));
    write_series("fig9_workload", &managed.series("clients"));
    println!(
        "mean latency: without Jade {:.2} s (paper 10.42 s), with Jade {:.0} ms (paper ~590 ms)",
        unmanaged.mean_latency_ms() / 1e3,
        managed.mean_latency_ms()
    );

    println!("\n--- Table 1 ---");
    let (m, u) = run_managed_and_unmanaged(
        SystemConfig::intrusivity(true, 80),
        SystemConfig::intrusivity(false, 80),
        SimDuration::from_secs(1200),
    );
    let (tp_j, rt_j, cpu_j, mem_j) = m.intrusivity_row(120.0, 1200.0);
    let (tp_n, rt_n, cpu_n, mem_n) = u.intrusivity_row(120.0, 1200.0);
    println!("                      with Jade    without Jade");
    println!("Throughput (req./s)   {tp_j:10.1}    {tp_n:10.1}   (paper: 12 / 12)");
    println!("Resp.time (ms)        {rt_j:10.0}    {rt_n:10.0}   (paper: 89 / 87)");
    println!("CPU usage (%)         {cpu_j:10.2}    {cpu_n:10.2}   (paper: 12.74 / 12.42)");
    println!("Memory usage (%)      {mem_j:10.1}    {mem_n:10.1}   (paper: 20.1 / 17.5)");
}
