//! The RUBiS benchmarking tool's report: per-interaction counts and
//! response times ("this benchmarking tool gathers statistics about the
//! generated workload and the web application behavior", paper §5.2),
//! for a managed steady-state run.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(80);
    println!("=== RUBiS report: {clients} clients, 600 s, managed ===");
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(clients);
    let out = run_experiment(cfg, SimDuration::from_secs(600));

    println!(
        "{:<28} {:>9} {:>7} {:>10} {:>10} {:>7}",
        "interaction", "completed", "failed", "mean_ms", "max_ms", "share"
    );
    let total = out.app.stats.total_completed().max(1) as f64;
    let mut rows: Vec<_> = out.app.stats.per_interaction().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.completed));
    for (name, st) in rows {
        println!(
            "{:<28} {:>9} {:>7} {:>10.1} {:>10.1} {:>6.1}%",
            name,
            st.completed,
            st.failed,
            st.mean_latency_ms(),
            st.latency_max_ms,
            100.0 * st.completed as f64 / total
        );
    }
    println!(
        "\noverall: {} completed, {} failed, mean {:.1} ms, throughput {:.1} req/s",
        out.app.stats.total_completed(),
        out.app.stats.total_failed(),
        out.mean_latency_ms(),
        out.throughput()
    );
}
