//! Shared experiment-orchestration layer.
//!
//! Every figure/table binary describes its scenarios as a list of
//! [`RunSpec`]s and hands them to a [`Harness`], which
//!
//! * executes the runs across a worker pool (`--jobs N`, one simulation
//!   engine per thread — the engines themselves stay single-threaded and
//!   deterministic),
//! * optionally rebases every run's seed on a common root (`--seed N`)
//!   while preserving *common random numbers*: specs that share a
//!   [`RunSpec::stream`] receive the same derived seed, so a managed run
//!   and its unmanaged baseline still see the identical workload,
//! * returns results in spec order regardless of which worker finished
//!   first, and
//! * writes a machine-readable manifest (`results/<name>.json`) recording
//!   for each run the seed, config digest, outcome digest, wall time and
//!   events/sec.
//!
//! The outcome digest of a run depends only on its configuration — never
//! on the worker count, scheduling order, or wall-clock conditions —
//! which is what `tests/determinism.rs` locks in.

use jade::config::SystemConfig;
use jade::experiment::{config_digest, run_experiment, ExperimentOutput};
use jade_sim::{SimDuration, SimRng};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One scenario to simulate.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Human-readable run label (also lands in the manifest).
    pub label: String,
    /// Full system configuration (including its default seed).
    pub cfg: SystemConfig,
    /// Virtual-time horizon.
    pub duration: SimDuration,
    /// Random-number stream. When the harness rebases seeds (`--seed`),
    /// specs with equal streams get equal derived seeds — use one stream
    /// per *comparison group* (e.g. managed vs unmanaged) so baselines
    /// keep seeing the same workload (common random numbers).
    pub stream: u64,
}

impl RunSpec {
    /// A spec on stream 0 (the default comparison group).
    pub fn new(label: impl Into<String>, cfg: SystemConfig, duration: SimDuration) -> Self {
        Self {
            label: label.into(),
            cfg,
            duration,
            stream: 0,
        }
    }

    /// Moves the spec onto a different random-number stream.
    pub fn on_stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }
}

/// The manifest row of one completed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Label copied from the spec.
    pub label: String,
    /// The seed the run actually used (after any `--seed` rebase).
    pub seed: u64,
    /// Digest of the full configuration (see [`config_digest`]).
    pub config_digest: u64,
    /// Digest of the observable trajectory
    /// ([`ExperimentOutput::outcome_digest`]).
    pub outcome_digest: u64,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Simulation speed, events per wall-clock second.
    pub events_per_sec: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Run-wide mean client latency, ms.
    pub mean_latency_ms: f64,
    /// Run-wide throughput, req/s.
    pub throughput: f64,
}

/// A completed run: its manifest row plus the full output for plotting.
pub struct RunResult {
    /// Manifest row.
    pub record: RunRecord,
    /// Full experiment output.
    pub out: ExperimentOutput,
}

/// Flag summary the figure binaries append to their `--help`/error text.
pub const HARNESS_USAGE: &str = "\
harness flags:
  --jobs N    worker threads (default: available parallelism)
  --seed N    rebase run seeds on N; runs in the same comparison group
              still share a seed (common random numbers)
  --help      this text
";

/// The experiment runner: worker-pool width plus optional seed rebase.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Worker threads (>= 1). Affects wall time only, never outcomes.
    pub jobs: usize,
    /// When set, every spec's seed becomes
    /// `SimRng::stream_seed(seed, spec.stream)`.
    pub seed: Option<u64>,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            jobs: default_jobs(),
            seed: None,
        }
    }
}

/// Available parallelism, with a serial fallback.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Harness {
    /// A harness running `jobs` workers with unrebased seeds.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            seed: None,
        }
    }

    /// Parses `--jobs N` / `--seed N` (and `--help`) from an argument
    /// list. Errors carry the message to print.
    pub fn from_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut harness = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg {
                "--jobs" => {
                    let v = args.next().ok_or("--jobs needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--jobs: '{v}' is not a valid number"))?;
                    if n == 0 {
                        return Err("--jobs must be >= 1".into());
                    }
                    harness.jobs = n;
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    harness.seed = Some(
                        v.parse()
                            .map_err(|_| format!("--seed: '{v}' is not a valid number"))?,
                    );
                }
                "--help" | "-h" => return Err(HARNESS_USAGE.to_owned()),
                other => return Err(format!("unknown flag '{other}'\n{HARNESS_USAGE}")),
            }
        }
        Ok(harness)
    }

    /// Parses the process arguments, exiting with the message on error.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_args(args.iter().map(String::as_str)) {
            Ok(h) => h,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The seed a spec will run with under this harness.
    pub fn effective_seed(&self, spec: &RunSpec) -> u64 {
        match self.seed {
            Some(root) => SimRng::stream_seed(root, spec.stream),
            None => spec.cfg.seed,
        }
    }

    /// Runs all specs across the worker pool. The result vector is in
    /// spec order, and every run's outcome digest is independent of
    /// `jobs` — scheduling affects only wall-clock numbers.
    // Sanctioned wall-clock user: `wall_ms` is labelled wall time and is
    // excluded from every outcome digest.
    #[allow(clippy::disallowed_methods)]
    pub fn run(&self, specs: Vec<RunSpec>) -> Vec<RunResult> {
        let specs: Vec<RunSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.cfg.seed = self.effective_seed(&s);
                s
            })
            .collect();
        let n = specs.len();
        let workers = self.jobs.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let cells: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let specs = &specs;
        let cells_ref = &cells;
        let next_ref = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let spec = &specs[i];
                    let started = Instant::now();
                    let out = run_experiment(spec.cfg.clone(), spec.duration);
                    let wall = started.elapsed();
                    let wall_ms = wall.as_secs_f64() * 1e3;
                    let record = RunRecord {
                        label: spec.label.clone(),
                        seed: spec.cfg.seed,
                        config_digest: config_digest(&spec.cfg),
                        outcome_digest: out.outcome_digest(),
                        events: out.events,
                        wall_ms,
                        events_per_sec: out.events as f64 / wall.as_secs_f64().max(1e-9),
                        completed: out.app.stats.total_completed(),
                        failed: out.app.stats.total_failed(),
                        mean_latency_ms: out.mean_latency_ms(),
                        throughput: out.throughput(),
                    };
                    *cells_ref[i].lock().expect("result cell") = Some(RunResult { record, out });
                });
            }
        });
        cells
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("result cell")
                    .expect("every claimed run completes")
            })
            .collect()
    }

    /// Renders the manifest JSON for a set of results.
    pub fn manifest_json(&self, name: &str, results: &[RunResult]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_str(name));
        out.push_str("  \"schema\": 1,\n");
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(
            out,
            "  \"seed_rebase\": {},",
            self.seed.map_or("null".to_owned(), |s| s.to_string())
        );
        out.push_str("  \"runs\": [");
        for (i, r) in results.iter().enumerate() {
            let rec = &r.record;
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"label\": {}, ", json_str(&rec.label));
            let _ = write!(out, "\"seed\": {}, ", rec.seed);
            let _ = write!(out, "\"config_digest\": \"{:016x}\", ", rec.config_digest);
            let _ = write!(out, "\"outcome_digest\": \"{:016x}\", ", rec.outcome_digest);
            let _ = write!(out, "\"events\": {}, ", rec.events);
            let _ = write!(out, "\"wall_ms\": {}, ", json_num(rec.wall_ms, 3));
            let _ = write!(
                out,
                "\"events_per_sec\": {}, ",
                json_num(rec.events_per_sec, 0)
            );
            let _ = write!(out, "\"completed\": {}, ", rec.completed);
            let _ = write!(out, "\"failed\": {}, ", rec.failed);
            let _ = write!(
                out,
                "\"mean_latency_ms\": {}, ",
                json_num(rec.mean_latency_ms, 3)
            );
            let _ = write!(out, "\"throughput\": {}", json_num(rec.throughput, 3));
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the manifest to `results/<name>.json` (anchored at the
    /// repository root regardless of working directory) and prints the
    /// path.
    pub fn write_manifest(&self, name: &str, results: &[RunResult]) {
        let dir = crate::microbench::repo_relative(Path::new("results"));
        let path = self.write_manifest_under(&dir, name, results);
        if let Some(path) = path {
            println!("  wrote {}", path.display());
        }
    }

    /// Writes the manifest under an explicit directory (tests use a
    /// scratch dir). Returns the path on success.
    pub fn write_manifest_under(
        &self,
        dir: &Path,
        name: &str,
        results: &[RunResult],
    ) -> Option<PathBuf> {
        let _ = fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, self.manifest_json(name, results))
            .ok()
            .map(|()| path)
    }

    /// One-line run summary including the digests (the harness version of
    /// [`crate::print_run_summary`]).
    pub fn print_record(rec: &RunRecord) {
        println!(
            "{}: {} completed, {} failed, mean latency {:.0} ms, throughput {:.1} req/s | \
             seed {}, {} events in {:.0} ms ({:.2} Mev/s), outcome {:016x}",
            rec.label,
            rec.completed,
            rec.failed,
            rec.mean_latency_ms,
            rec.throughput,
            rec.seed,
            rec.events,
            rec.wall_ms,
            rec.events_per_sec / 1e6,
            rec.outcome_digest,
        );
    }
}

/// JSON string literal with minimal escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number with `decimals` fractional digits (`null` for
/// NaN/inf, which JSON cannot represent).
fn json_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse() {
        let h = Harness::from_args(["--jobs", "3", "--seed", "99"]).unwrap();
        assert_eq!(h.jobs, 3);
        assert_eq!(h.seed, Some(99));
        assert!(Harness::from_args(["--jobs", "0"]).is_err());
        assert!(Harness::from_args(["--wat"]).is_err());
        assert!(Harness::from_args(["--help"])
            .unwrap_err()
            .contains("--jobs"));
    }

    #[test]
    fn seed_rebase_preserves_common_random_numbers() {
        let h = Harness {
            jobs: 1,
            seed: Some(7),
        };
        let cfg = SystemConfig::paper_managed();
        let d = SimDuration::from_secs(1);
        let a = RunSpec::new("a", cfg.clone(), d);
        let b = RunSpec::new("b", cfg.clone(), d);
        let c = RunSpec::new("c", cfg, d).on_stream(1);
        // Same stream => same derived seed; different stream => different.
        assert_eq!(h.effective_seed(&a), h.effective_seed(&b));
        assert_ne!(h.effective_seed(&a), h.effective_seed(&c));
        // Without a rebase the config's own seed is used.
        let h0 = Harness::with_jobs(1);
        assert_eq!(h0.effective_seed(&a), 42);
    }

    #[test]
    fn manifest_is_valid_shape() {
        let h = Harness::with_jobs(2);
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = jade_rubis::WorkloadRamp::constant(20);
        let results = h.run(vec![RunSpec::new(
            "tiny \"run\"",
            cfg,
            SimDuration::from_secs(30),
        )]);
        let json = h.manifest_json("unit", &results);
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\"label\": \"tiny \\\"run\\\"\""));
        assert!(json.contains("\"outcome_digest\": \""));
        assert!(json.contains("\"events_per_sec\": "));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn results_keep_spec_order_and_digests_ignore_jobs() {
        let d = SimDuration::from_secs(60);
        let mk = |clients: u32, stream: u64| {
            let mut cfg = SystemConfig::paper_managed();
            cfg.ramp = jade_rubis::WorkloadRamp::constant(clients);
            RunSpec::new(format!("c{clients}"), cfg, d).on_stream(stream)
        };
        let specs = || vec![mk(20, 0), mk(40, 1), mk(60, 2), mk(30, 3)];
        let serial = Harness::with_jobs(1).run(specs());
        let parallel = Harness::with_jobs(4).run(specs());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.record.label, p.record.label);
            assert_eq!(s.record.outcome_digest, p.record.outcome_digest);
            assert_eq!(s.record.config_digest, p.record.config_digest);
            assert_eq!(s.record.events, p.record.events);
        }
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(1.25, 2), "1.25");
        assert_eq!(json_num(f64::NAN, 2), "null");
    }
}
