//! Minimal micro-benchmark runner (the repository builds offline, so
//! `cargo bench` targets use this instead of an external harness).
//!
//! Timing model: one calibration pass picks an iteration count that fills
//! a sample budget, then several samples run back-to-back and the *best*
//! sample is reported as ns/iter (the minimum is the estimate least
//! polluted by scheduler noise; the mean is reported alongside).
//!
//! Budgets shrink under `JADE_BENCH_FAST=1` so CI smoke-runs stay cheap.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use std::hint::black_box;

/// Result of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case name.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Best-sample nanoseconds per iteration.
    pub best_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Iterations per second implied by the best sample.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.best_ns.max(1e-3)
    }
}

/// Collects benchmark cases and renders reports.
#[derive(Debug, Default)]
pub struct Runner {
    results: Vec<BenchResult>,
    sample_ms: f64,
    samples: u32,
}

impl Runner {
    /// A runner with default budgets (fast ones under `JADE_BENCH_FAST`).
    pub fn new() -> Self {
        let fast = crate::cli::bench_fast();
        Self {
            results: Vec::new(),
            sample_ms: if fast { 20.0 } else { 120.0 },
            samples: if fast { 3 } else { 7 },
        }
    }

    /// Times `f` (whose return value is black-boxed) and records a case.
    // The microbenchmark runner is a sanctioned wall-clock user: its
    // output is labelled wall time and never feeds a results digest.
    #[allow(clippy::disallowed_methods)]
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        // Calibrate: how many iterations fill one sample budget?
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms >= self.sample_ms || iters >= (1 << 30) {
                // Scale to the budget using the measured rate.
                let per_iter = elapsed_ms / iters as f64;
                iters = ((self.sample_ms / per_iter.max(1e-9)) as u64).max(1);
                break;
            }
            iters *= 4;
        }
        // Measure.
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
            best = best.min(ns);
            total += ns;
        }
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            best_ns: best,
            mean_ns: total / self.samples as f64,
        };
        println!(
            "{:<44} {:>12.1} ns/iter  ({:>10.0} /s, mean {:.1} ns, {} iters x {} samples)",
            result.name,
            result.best_ns,
            result.per_sec(),
            result.mean_ns,
            result.iters,
            self.samples
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All recorded cases.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Looks a case up by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Renders the cases as a JSON document.
    pub fn to_json(&self, name: &str) -> String {
        self.to_json_with(name, &[])
    }

    /// Like [`Runner::to_json`], with extra derived scalars (e.g. a
    /// speedup ratio between two cases) appended as top-level fields.
    pub fn to_json_with(&self, name: &str, extras: &[(&str, f64)]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{name}\",");
        out.push_str("  \"schema\": 1,\n");
        for (key, v) in extras {
            let _ = writeln!(out, "  \"{key}\": {v:.3},");
        }
        out.push_str("  \"cases\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"mean_ns\": {:.1}, \
                 \"per_sec\": {:.0}, \"iters\": {}}}",
                r.name,
                r.best_ns,
                r.mean_ns,
                r.per_sec(),
                r.iters
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON report, printing the path.
    pub fn write_json(&self, name: &str, path: impl AsRef<Path>) {
        self.write_json_with(name, path, &[]);
    }

    /// Writes the JSON report with extra derived scalars. Relative paths
    /// are resolved against the repository root, not the working
    /// directory, so `cargo bench` (which runs in the package directory)
    /// and direct invocation drop reports in the same place.
    pub fn write_json_with(&self, name: &str, path: impl AsRef<Path>, extras: &[(&str, f64)]) {
        let path = repo_relative(path.as_ref());
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        if fs::write(&path, self.to_json_with(name, extras)).is_ok() {
            println!("  wrote {}", path.display());
        }
    }
}

/// Anchors a relative path at the workspace root (two levels above this
/// crate's manifest).
pub(crate) fn repo_relative(path: &Path) -> PathBuf {
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_case() {
        std::env::set_var("JADE_BENCH_FAST", "1");
        let mut r = Runner::new();
        r.sample_ms = 1.0;
        r.samples = 2;
        let res = r.bench("add", || black_box(1u64) + black_box(2u64)).clone();
        assert!(res.best_ns > 0.0 && res.best_ns.is_finite());
        assert!(r.get("add").is_some());
        let json = r.to_json("unit");
        assert!(json.contains("\"name\": \"add\""));
        assert!(json.contains("\"ns_per_iter\""));
    }
}
