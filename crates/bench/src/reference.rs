//! Reference models kept for differential testing and benchmarking.
//!
//! [`NaivePsCpu`] is the original scan-on-advance processor-sharing CPU:
//! it stores each job's *remaining* demand and subtracts the interval's
//! progress from every resident job on each driver call — O(n) per
//! operation. `jade_sim::PsCpu` replaced it with the O(log n) virtual-time
//! formulation (see the module docs of `crates/sim/src/cpu.rs`); this copy
//! is the oracle `tests/cpu_prop.rs` checks the rewrite against, and the
//! baseline the `ps_cpu/naive/*` bench cases measure.
//!
//! [`NaiveDatabase`] is likewise the original name-keyed storage engine:
//! tables are a `BTreeMap<String, _>`, rows are `BTreeMap<String, Value>`
//! column maps, every statement re-resolves its table and column names,
//! and `SelectWhere` is a full scan. `jade_tiers::Database` replaced it
//! with the interned, index-accelerated engine; this copy is the oracle
//! `tests/storage_prop.rs` checks result and digest parity against, and
//! the baseline the `db/naive/*` bench cases measure.

use jade_sim::metrics::UtilizationTracker;
use jade_sim::{EfficiencyCurve, JobId, SimDuration, SimTime};
use jade_tiers::sql::{ColId, Schema, SqlError, Statement, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

#[derive(Debug, Clone)]
struct PsJob {
    id: JobId,
    /// Remaining service demand, in seconds of dedicated CPU.
    remaining: f64,
}

/// Remaining demand below this is considered complete (guards float error).
const EPSILON_SECS: f64 = 1e-9;

/// The original O(n) scan-on-advance processor-sharing CPU.
///
/// Semantically equivalent to `jade_sim::PsCpu` (same driver API, same
/// event-boundary progress rule, same timer rounding); kept verbatim as a
/// reference model.
#[derive(Debug, Clone)]
pub struct NaivePsCpu {
    speed: f64,
    curve: EfficiencyCurve,
    jobs: Vec<PsJob>,
    last_update: SimTime,
    util: UtilizationTracker,
    completed: Vec<JobId>,
}

impl NaivePsCpu {
    /// Creates a CPU with `speed` demand-seconds/second capacity (1.0 = one
    /// reference core) and the given degradation curve.
    pub fn new(speed: f64, curve: EfficiencyCurve) -> Self {
        assert!(speed > 0.0);
        NaivePsCpu {
            speed,
            curve,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            util: UtilizationTracker::new(),
            completed: Vec::new(),
        }
    }

    /// Number of resident (incomplete) jobs.
    pub fn load(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job progress rate right now, in demand-seconds per second.
    fn rate(&self) -> f64 {
        let n = self.jobs.len();
        if n == 0 {
            0.0
        } else {
            self.speed * self.curve.efficiency(n) / n as f64
        }
    }

    /// Advances all jobs to `now`, moving finished jobs to the completed
    /// buffer.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update);
        let elapsed = (now - self.last_update).as_secs_f64();
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let progress = elapsed * self.rate();
            for job in &mut self.jobs {
                job.remaining -= progress;
            }
        }
        self.last_update = now;
        let completed = &mut self.completed;
        self.jobs.retain(|j| {
            if j.remaining <= EPSILON_SECS {
                completed.push(j.id);
                false
            } else {
                true
            }
        });
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
    }

    /// Submits a job with the given total demand.
    pub fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration) {
        self.advance(now);
        self.util.set_busy(now);
        self.jobs.push(PsJob {
            id,
            remaining: demand.as_secs_f64().max(EPSILON_SECS),
        });
    }

    /// Forcibly removes a job. Returns true if the job was resident.
    pub fn abort(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        let before = self.jobs.len();
        self.jobs.retain(|j| j.id != id);
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
        self.jobs.len() != before
    }

    /// Removes all jobs, returning their ids in submission order.
    pub fn abort_all(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let ids = self.jobs.drain(..).map(|j| j.id).collect();
        self.util.set_idle(now);
        ids
    }

    /// Time of the next job completion given the current population, or
    /// `None` when idle.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        // Round *up* to the next microsecond so the timer never fires
        // before the job is actually done.
        let micros = (min_remaining / rate * 1e6).ceil() as u64;
        Some(now + SimDuration::from_micros(micros.max(1)))
    }

    /// Advances to `now` and drains the jobs that have completed.
    pub fn collect_completions(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        std::mem::take(&mut self.completed)
    }

    /// CPU utilization since the previous call.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.util.sample(now)
    }

    /// Total busy time up to `now`.
    pub fn busy_time(&mut self, now: SimTime) -> SimDuration {
        self.advance(now);
        self.util.busy_time(now)
    }
}

/// A name-keyed row: column name → value (absent columns are NULL).
pub type NaiveRow = BTreeMap<String, Value>;

/// Result of a [`NaiveDatabase`] statement.
#[derive(Debug, Clone, PartialEq)]
pub enum NaiveQueryResult {
    /// DDL / write acknowledgement; for inserts carries the assigned key.
    Ack {
        /// Primary key assigned by an insert, when applicable.
        inserted_key: Option<u64>,
        /// Number of rows affected.
        affected: u64,
    },
    /// Rows returned by a select, as `(key, row)` pairs (deep-cloned).
    Rows(Vec<(u64, NaiveRow)>),
    /// Count result.
    Count(u64),
}

#[derive(Debug, Clone, Default)]
struct NaiveTable {
    rows: BTreeMap<u64, NaiveRow>,
    next_key: u64,
}

/// The original name-keyed, scan-everything storage engine.
///
/// Statements arrive interned (the shared `Statement` type), but every
/// execution resolves the table and column ids back to names through the
/// schema and then looks them up in string-keyed maps — reproducing the
/// per-request hashing and allocation the replaced engine paid. NULLs are
/// never stored: an insert skips them and an update-to-NULL removes the
/// column, which is what makes [`NaiveDatabase::digest`] agree with the
/// interned engine's.
#[derive(Debug, Clone, Default)]
pub struct NaiveDatabase {
    tables: BTreeMap<String, NaiveTable>,
}

impl NaiveDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        NaiveDatabase::default()
    }

    /// Executes one statement, resolving every identifier by name.
    pub fn execute(
        &mut self,
        schema: &Schema,
        stmt: &Statement,
    ) -> Result<NaiveQueryResult, SqlError> {
        let name = schema.table_name(stmt.table());
        match stmt {
            Statement::CreateTable { .. } => {
                self.tables.entry(name.to_owned()).or_default();
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected: 0,
                })
            }
            Statement::Insert { table, row } => {
                let def = schema.table(*table).expect("table in catalog");
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let key = t.next_key;
                t.next_key += 1;
                let mut cols = NaiveRow::new();
                for (ci, v) in row.iter().enumerate() {
                    if !v.is_null() {
                        cols.insert(def.column(ColId(ci as u16)).to_owned(), v.clone());
                    }
                }
                t.rows.insert(key, cols);
                Ok(NaiveQueryResult::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            Statement::Update { table, key, set } => {
                let def = schema.table(*table).expect("table in catalog");
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let affected = match t.rows.get_mut(key) {
                    Some(row) => {
                        for (col, v) in set {
                            let col_name = def.column(*col);
                            if v.is_null() {
                                row.remove(col_name);
                            } else {
                                row.insert(col_name.to_owned(), v.clone());
                            }
                        }
                        1
                    }
                    None => 0,
                };
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::Delete { key, .. } => {
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let affected = u64::from(t.rows.remove(key).is_some());
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::SelectByKey { key, .. } => {
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                Ok(NaiveQueryResult::Rows(
                    t.rows
                        .get(key)
                        .map(|r| (*key, r.clone()))
                        .into_iter()
                        .collect(),
                ))
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let def = schema.table(*table).expect("table in catalog");
                let col_name = def.column(*column);
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                if value.is_null() {
                    return Ok(NaiveQueryResult::Rows(Vec::new()));
                }
                Ok(NaiveQueryResult::Rows(
                    t.rows
                        .iter()
                        .filter(|(_, r)| r.get(col_name) == Some(value))
                        .take(*limit)
                        .map(|(k, r)| (*k, r.clone()))
                        .collect(),
                ))
            }
            Statement::Count { .. } => {
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                Ok(NaiveQueryResult::Count(t.rows.len() as u64))
            }
        }
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }

    /// Content digest — the algorithm `jade_tiers::Database::digest`
    /// reproduces byte for byte.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (name, t) in &self.tables {
            name.hash(&mut h);
            t.next_key.hash(&mut h);
            for (key, row) in &t.rows {
                key.hash(&mut h);
                for (col, v) in row {
                    match v {
                        Value::Null => {}
                        Value::Int(i) => {
                            col.hash(&mut h);
                            i.hash(&mut h);
                        }
                        Value::Text(s) => {
                            col.hash(&mut h);
                            s.hash(&mut h);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

// ---------------------------------------------------------------------
// Naive end-to-end request lifecycle
// ---------------------------------------------------------------------

use jade_rubis::{
    dataset_statements, rubis_schema, DatasetSpec, EmulatedClient, KeySpace, DEFAULT_THINK_TIME,
};
use jade_sim::{EfficiencyCurve as Curve, SimRng};
use jade_tiers::InteractionPlan;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::Arc;

/// Events of the naive lifecycle simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LifecycleMsg {
    Think(u32),
    TomcatAccept {
        req: u64,
    },
    DbDispatch {
        req: u64,
    },
    CpuComplete {
        node: usize,
    },
    Response {
        req: u64,
    },
    /// Periodic observation tick (only scheduled by
    /// [`NaiveLifecycle::run_with_probes`]; plain [`NaiveLifecycle::run`]
    /// never emits it, so historical runs are unchanged).
    Probe,
}

/// The pre-wheel timer store: a `BinaryHeap` with payloads inline plus a
/// `HashSet` of cancelled sequence numbers (the same baseline the
/// `event_queue/naive/*` bench cases measure in isolation).
///
/// This is both the naive lifecycle's event queue and the trivially
/// correct reference model the `wheel_prop` differential test checks the
/// hierarchical timer wheel against: entries fire in `(time, insertion
/// sequence)` order, cancellation is lazy (filtered at pop), and a
/// sequence number is never reused, so a cancel of an already-fired
/// timer is a no-op by construction.
pub struct NaiveTimers<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, T)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T: Ord> NaiveTimers<T> {
    /// An empty timer store.
    pub fn new() -> Self {
        NaiveTimers {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Arms a timer; returns its cancellation handle.
    pub fn push(&mut self, time: SimTime, msg: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq, msg)));
        seq
    }

    /// Marks a timer cancelled (dropped lazily at pop).
    pub fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    /// Pops the earliest live timer.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse((time, seq, msg))) = self.heap.pop() {
            if !self.cancelled.remove(&seq) {
                return Some((time, msg));
            }
        }
        None
    }

    /// Live timers remaining (cancelled-but-unswept entries excluded).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live timers remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Ord> Default for NaiveTimers<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy)]
enum LifecycleOwner {
    ServletPre(u64),
    ServletPost(u64),
    Db(u64),
    Routing,
}

struct LifecycleRequest {
    client: u32,
    plan: InteractionPlan,
    tomcat: usize,
    sql_idx: usize,
    pending_db: usize,
}

const LC_TOMCATS: usize = 2;
const LC_BACKENDS: usize = 2;
const LC_WORKERS: usize = 150;
const LC_QUEUE_LIMIT: usize = 512;
const LC_PLB: usize = 0;
const LC_CJDBC: usize = 1;
const LC_TOMCAT0: usize = 2;
const LC_CLIENT_DELAY: SimDuration = SimDuration::from_millis(1);
const LC_HOP: SimDuration = SimDuration::from_micros(120);
const LC_PLB_ROUTING: SimDuration = SimDuration::from_micros(100);
const LC_CJDBC_ROUTING: SimDuration = SimDuration::from_micros(300);
/// Management-daemon CPU intrusivity per probed node per tick (mirrors
/// the managed system's `daemon_demand`).
const LC_DAEMON_DEMAND: SimDuration = SimDuration::from_millis(2);
/// Smoothing windows of the naive probe plane's two sensors (the paper's
/// 60 s application / 90 s database temporal averages).
const LC_APP_WINDOW: SimDuration = SimDuration::from_secs(60);
const LC_DB_WINDOW: SimDuration = SimDuration::from_secs(90);

/// The pre-optimization request lifecycle, end to end: a closed-loop
/// multi-tier simulation (clients → PLB → Tomcat workers → C-JDBC →
/// MySQL backends) built entirely from the retained naive components.
///
/// Every structure is the one the optimized stack replaced: the
/// `BinaryHeap` + cancel-set event queue, `BTreeMap`s keyed by request
/// and job id, name-keyed accept queues and CPU timers, [`NaivePsCpu`]
/// scan-on-advance processors, [`NaiveDatabase`] backends, a freshly
/// allocated SQL plan per interaction, and a cloned `SqlOp` per dispatch.
/// The `e2e/naive/*` bench cases measure this model against the real
/// `jade::experiment::run_experiment` stack at equal client counts.
pub struct NaiveLifecycle {
    queue: NaiveTimers<LifecycleMsg>,
    tomcats: usize,
    backends: usize,
    backend0: usize,
    cpus: Vec<NaivePsCpu>,
    cpu_timers: BTreeMap<usize, u64>,
    inflight: BTreeMap<u64, LifecycleRequest>,
    job_owner: BTreeMap<u64, LifecycleOwner>,
    accept_queues: BTreeMap<usize, VecDeque<u64>>,
    active: Vec<usize>,
    dbs: Vec<NaiveDatabase>,
    schema: Arc<Schema>,
    clients: Vec<EmulatedClient>,
    ks: KeySpace,
    next_request: u64,
    next_job: u64,
    rr_tomcat: usize,
    rr_backend: usize,
    completed: u64,
    events: u64,
    now: SimTime,
}

impl NaiveLifecycle {
    /// Builds the system: loads the RUBiS dump into every backend and
    /// staggers the initial think of each emulated client, exactly like
    /// the real bootstrap.
    pub fn new(clients: u32, seed: u64) -> Self {
        Self::at_scale(
            clients,
            seed,
            DEFAULT_THINK_TIME,
            1.0,
            LC_TOMCATS,
            LC_BACKENDS,
        )
    }

    /// [`NaiveLifecycle::new`] with the deployment scaled: mean think
    /// time, node speed and tier widths become parameters so the naive
    /// stack can be pitted against the real system on rescaled scenarios
    /// (the million-client run pits it against `cpu_speed` 20 nodes and
    /// four replicas per managed tier).
    pub fn at_scale(
        clients: u32,
        seed: u64,
        think: SimDuration,
        cpu_speed: f64,
        tomcats: usize,
        backends: usize,
    ) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let schema = rubis_schema();
        let spec = DatasetSpec::small();
        let dump = dataset_statements(spec, &mut rng);
        let dbs: Vec<NaiveDatabase> = (0..backends)
            .map(|_| {
                let mut db = NaiveDatabase::new();
                for s in &dump {
                    let _ = db.execute(&schema, s);
                }
                db
            })
            .collect();
        let backend0 = LC_TOMCAT0 + tomcats;
        let mut sim = NaiveLifecycle {
            queue: NaiveTimers::new(),
            tomcats,
            backends,
            backend0,
            cpus: vec![NaivePsCpu::new(cpu_speed, Curve::Ideal); backend0 + backends],
            cpu_timers: BTreeMap::new(),
            inflight: BTreeMap::new(),
            job_owner: BTreeMap::new(),
            accept_queues: BTreeMap::new(),
            active: vec![0; tomcats],
            dbs,
            schema,
            clients: Vec::with_capacity(clients as usize),
            ks: spec.into(),
            next_request: 0,
            next_job: 0,
            rr_tomcat: 0,
            rr_backend: 0,
            completed: 0,
            events: 0,
            now: SimTime::ZERO,
        };
        for i in 0..clients {
            sim.clients.push(EmulatedClient::new(i, rng.fork(), think));
            let stagger = SimDuration::from_secs_f64(rng.f64() * think.as_secs_f64());
            sim.queue
                .push(SimTime::ZERO + stagger, LifecycleMsg::Think(i));
        }
        sim
    }

    /// Runs until `horizon`; returns `(completed requests, events)`.
    pub fn run(mut self, horizon: SimDuration) -> (u64, u64) {
        let end = SimTime::ZERO + horizon;
        while let Some((t, msg)) = self.queue.pop() {
            if t > end {
                break;
            }
            self.now = t;
            self.events += 1;
            self.dispatch(msg);
        }
        (self.completed, self.events)
    }

    /// [`NaiveLifecycle::run`] with the pre-streaming observation plane
    /// bolted on: every `period` a probe tick runs the historical
    /// measurement path ([`NaiveObservation`]) over every node — fresh
    /// node-id `Vec`s, a fresh `BTreeMap` of CPU samples, `VecDeque`
    /// moving averages, keep-all series vectors, a `BTreeMap` heartbeat
    /// store, and one daemon job per node. The `e2e/naive/probe_heavy`
    /// bench case measures this against the real streamed probe at the
    /// same probe rate.
    pub fn run_with_probes(mut self, horizon: SimDuration, period: SimDuration) -> (u64, u64) {
        let mut obs = NaiveObservation::new(LC_APP_WINDOW, LC_DB_WINDOW);
        let end = SimTime::ZERO + horizon;
        self.queue.push(SimTime::ZERO + period, LifecycleMsg::Probe);
        while let Some((t, msg)) = self.queue.pop() {
            if t > end {
                break;
            }
            self.now = t;
            self.events += 1;
            if let LifecycleMsg::Probe = msg {
                self.on_probe(&mut obs, period);
            } else {
                self.dispatch(msg);
            }
        }
        (self.completed, self.events.wrapping_add(obs.ticks))
    }

    /// One naive probe tick: the exact allocation profile of the
    /// pre-streaming `on_measure_tick`.
    fn on_probe(&mut self, obs: &mut NaiveObservation, period: SimDuration) {
        let now = self.now;
        // Fresh node lists and a fresh ordered sample map, every tick.
        let app_nodes: Vec<usize> = (LC_TOMCAT0..self.backend0).collect();
        let db_nodes: Vec<usize> = (self.backend0..self.backend0 + self.backends).collect();
        let all_nodes: Vec<usize> = (0..self.cpus.len()).collect();
        let mut samples: BTreeMap<usize, f64> = BTreeMap::new();
        for &n in &all_nodes {
            samples.insert(n, self.cpus[n].sample_utilization(now));
        }
        let app_avg = NaiveObservation::spatial_avg(&samples, &app_nodes);
        let db_avg = NaiveObservation::spatial_avg(&samples, &db_nodes);
        let all_avg = NaiveObservation::spatial_avg(&samples, &all_nodes);
        obs.observe(now, app_avg, db_avg, all_avg);
        // Heartbeats plus daemon intrusivity on every node.
        for &n in &all_nodes {
            obs.heartbeat.insert(n, now);
            self.submit_job(n, LifecycleOwner::Routing, LC_DAEMON_DEMAND);
        }
        self.queue.push(now + period, LifecycleMsg::Probe);
    }

    fn dispatch(&mut self, msg: LifecycleMsg) {
        match msg {
            LifecycleMsg::Think(c) => self.on_think(c),
            LifecycleMsg::TomcatAccept { req } => self.on_tomcat_accept(req),
            LifecycleMsg::DbDispatch { req } => self.on_db_dispatch(req),
            LifecycleMsg::CpuComplete { node } => self.on_cpu_complete(node),
            LifecycleMsg::Response { req } => self.on_response(req),
            // Only `run_with_probes` schedules probes; it intercepts them
            // before dispatch, so the plain lifecycle never sees one.
            LifecycleMsg::Probe => {}
        }
    }

    fn submit_job(&mut self, node: usize, owner: LifecycleOwner, demand: SimDuration) {
        let id = self.next_job;
        self.next_job += 1;
        self.job_owner.insert(id, owner);
        self.cpus[node].submit(self.now, JobId(id), demand);
        self.rearm(node);
    }

    fn rearm(&mut self, node: usize) {
        if let Some(tok) = self.cpu_timers.remove(&node) {
            self.queue.cancel(tok);
        }
        if let Some(t) = self.cpus[node].next_completion(self.now) {
            let tok = self.queue.push(t, LifecycleMsg::CpuComplete { node });
            self.cpu_timers.insert(node, tok);
        }
    }

    fn on_think(&mut self, c: u32) {
        // The historical allocation profile: a fresh `Vec<SqlOp>` per plan.
        let plan = self.clients[c as usize].next_interaction(&mut self.ks);
        let req = self.next_request;
        self.next_request += 1;
        let tomcat = self.rr_tomcat % self.tomcats;
        self.rr_tomcat += 1;
        self.inflight.insert(
            req,
            LifecycleRequest {
                client: c,
                plan,
                tomcat,
                sql_idx: 0,
                pending_db: 0,
            },
        );
        self.submit_job(LC_PLB, LifecycleOwner::Routing, LC_PLB_ROUTING);
        self.queue.push(
            self.now + LC_CLIENT_DELAY + LC_HOP,
            LifecycleMsg::TomcatAccept { req },
        );
    }

    fn on_tomcat_accept(&mut self, req: u64) {
        let Some(state) = self.inflight.get(&req) else {
            return;
        };
        let tomcat = state.tomcat;
        if self.active[tomcat] < LC_WORKERS {
            self.start_servlet(req);
        } else {
            let q = self.accept_queues.entry(tomcat).or_default();
            if q.len() < LC_QUEUE_LIMIT {
                q.push_back(req);
            } else {
                self.fail(req); // connection refused
            }
        }
    }

    fn start_servlet(&mut self, req: u64) {
        let (tomcat, demand) = {
            let s = self.inflight.get(&req).expect("checked in caller");
            (s.tomcat, s.plan.pre_demand)
        };
        self.active[tomcat] += 1;
        self.submit_job(LC_TOMCAT0 + tomcat, LifecycleOwner::ServletPre(req), demand);
    }

    fn serve_accept_queue(&mut self, tomcat: usize) {
        loop {
            let next = match self.accept_queues.get_mut(&tomcat) {
                Some(q) => q.pop_front(),
                None => return,
            };
            let Some(req) = next else { return };
            if self.inflight.contains_key(&req) {
                self.start_servlet(req);
                return;
            }
        }
    }

    fn on_db_dispatch(&mut self, req: u64) {
        let Some(state) = self.inflight.get(&req) else {
            return;
        };
        if state.sql_idx >= state.plan.sql.len() {
            let (tomcat, demand) = (state.tomcat, state.plan.post_demand);
            self.submit_job(
                LC_TOMCAT0 + tomcat,
                LifecycleOwner::ServletPost(req),
                demand,
            );
            return;
        }
        // The historical per-dispatch clone of the whole SqlOp (the naive
        // lifecycle predates compiled plans, so its SQL is always `Ops`).
        let op = state.plan.sql.as_ops()[state.sql_idx].clone();
        self.submit_job(LC_CJDBC, LifecycleOwner::Routing, LC_CJDBC_ROUTING);
        if op.is_write() {
            if let Some(st) = self.inflight.get_mut(&req) {
                st.pending_db = self.backends;
            }
            for b in 0..self.backends {
                let _ = self.dbs[b].execute(&self.schema, &op.statement);
                self.submit_job(self.backend0 + b, LifecycleOwner::Db(req), op.demand);
            }
        } else {
            let b = self.rr_backend % self.backends;
            self.rr_backend += 1;
            if let Some(st) = self.inflight.get_mut(&req) {
                st.pending_db = 1;
            }
            let _ = self.dbs[b].execute(&self.schema, &op.statement);
            self.submit_job(self.backend0 + b, LifecycleOwner::Db(req), op.demand);
        }
    }

    fn on_cpu_complete(&mut self, node: usize) {
        self.cpu_timers.remove(&node);
        let done = self.cpus[node].collect_completions(self.now);
        for job in done {
            let Some(owner) = self.job_owner.remove(&job.0) else {
                continue;
            };
            match owner {
                LifecycleOwner::ServletPre(req) => {
                    self.queue
                        .push(self.now + LC_HOP, LifecycleMsg::DbDispatch { req });
                }
                LifecycleOwner::Db(req) => {
                    let Some(st) = self.inflight.get_mut(&req) else {
                        continue;
                    };
                    st.pending_db = st.pending_db.saturating_sub(1);
                    if st.pending_db == 0 {
                        st.sql_idx += 1;
                        self.queue
                            .push(self.now + LC_HOP, LifecycleMsg::DbDispatch { req });
                    }
                }
                LifecycleOwner::ServletPost(req) => {
                    let tomcat = self.inflight[&req].tomcat;
                    self.active[tomcat] = self.active[tomcat].saturating_sub(1);
                    self.serve_accept_queue(tomcat);
                    self.queue
                        .push(self.now + LC_CLIENT_DELAY, LifecycleMsg::Response { req });
                }
                LifecycleOwner::Routing => {}
            }
        }
        self.rearm(node);
    }

    fn on_response(&mut self, req: u64) {
        let Some(state) = self.inflight.remove(&req) else {
            return;
        };
        self.completed += 1;
        let c = state.client as usize;
        self.clients[c].note_completed();
        let think = self.clients[c].think_time();
        self.queue
            .push(self.now + think, LifecycleMsg::Think(state.client));
    }

    fn fail(&mut self, req: u64) {
        let Some(state) = self.inflight.remove(&req) else {
            return;
        };
        let c = state.client as usize;
        let think = self.clients[c].think_time();
        self.queue
            .push(self.now + think, LifecycleMsg::Think(state.client));
    }
}

// ---------------------------------------------------------------------
// The pre-delta RAIDb-1 replication stack
// ---------------------------------------------------------------------

/// The re-execute-everywhere replication stack the execute-once delta
/// broadcast replaced: every write is appended to a recovery log that
/// eagerly renders the statement to its string form (what C-JDBC
/// persisted), then re-evaluated independently by each replica — N×
/// statement evaluation, N× row construction, N× index maintenance for
/// an N-way mirror. A joining replica replays the *entire* statement log
/// from its checkpoint, re-executing every entry. Kept as the baseline
/// the `replication/naive/*` bench cases measure and the oracle
/// `tests/replication_prop.rs` checks delta convergence against.
pub struct NaiveReplication {
    /// One full database copy per active replica (full mirroring).
    pub replicas: Vec<jade_tiers::storage::Database>,
    log: Vec<(std::sync::Arc<Statement>, String)>,
    schema: std::sync::Arc<Schema>,
}

impl NaiveReplication {
    /// Builds an N-way mirror where every replica starts from a copy of
    /// `base`.
    pub fn new(
        schema: std::sync::Arc<Schema>,
        base: &jade_tiers::storage::Database,
        replicas: usize,
    ) -> Self {
        NaiveReplication {
            replicas: (0..replicas).map(|_| base.clone()).collect(),
            log: Vec::new(),
            schema,
        }
    }

    /// Broadcasts one write: logs it (rendering the string eagerly, as
    /// the original recovery log did) and re-executes it on every
    /// replica. Returns the summed affected-row cardinality.
    pub fn execute_write(&mut self, stmt: &std::sync::Arc<Statement>) -> u64 {
        self.log
            .push((std::sync::Arc::clone(stmt), stmt.render(&self.schema)));
        let mut acc = 0u64;
        for db in &mut self.replicas {
            if let Ok(summary) = db.execute(stmt) {
                acc = acc.wrapping_add(summary.cardinality());
            }
        }
        acc
    }

    /// Log length (== number of writes broadcast so far).
    pub fn head(&self) -> u64 {
        self.log.len() as u64
    }

    /// Synchronizes a joining replica starting from `base` by replaying
    /// the full statement log from `checkpoint`, returning the caught-up
    /// copy.
    pub fn sync_replica(
        &self,
        base: &jade_tiers::storage::Database,
        checkpoint: u64,
    ) -> jade_tiers::storage::Database {
        let mut db = base.clone();
        for (stmt, _) in self.log.iter().skip(checkpoint as usize) {
            let _ = db.execute(stmt);
        }
        db
    }

    /// Content digest of the mirror (all replicas are identical).
    pub fn digest(&self) -> u64 {
        self.replicas.first().map_or(0, |db| db.digest())
    }
}

// ---------------------------------------------------------------------
// The pre-streaming observation plane
// ---------------------------------------------------------------------

/// The `VecDeque`-backed moving average the fixed-capacity ring in
/// `jade_sim::MovingAverage` replaced, kept verbatim: push-back plus
/// running sum, then front-to-back eviction of samples older than the
/// window. The running-sum arithmetic is the reference the ring must
/// reproduce bit for bit (`tests/observation_prop.rs`), and the baseline
/// the `sensor/naive/*` bench cases measure.
#[derive(Debug, Clone)]
pub struct NaiveMovingAverage {
    window: SimDuration,
    samples: VecDeque<(SimTime, f64)>,
    sum: f64,
}

impl NaiveMovingAverage {
    /// Creates a moving average with the given time window.
    pub fn new(window: SimDuration) -> Self {
        NaiveMovingAverage {
            window,
            samples: VecDeque::new(),
            sum: 0.0,
        }
    }

    /// Records a sample at time `t` and evicts samples older than the
    /// window.
    pub fn record(&mut self, t: SimTime, v: f64) {
        self.samples.push_back((t, v));
        self.sum += v;
        let horizon = if t.as_micros() >= self.window.as_micros() {
            SimTime::from_micros(t.as_micros() - self.window.as_micros())
        } else {
            SimTime::ZERO
        };
        while let Some(&(st, sv)) = self.samples.front() {
            if st < horizon {
                self.samples.pop_front();
                self.sum -= sv;
            } else {
                break;
            }
        }
    }

    /// Current smoothed value, or `None` when no sample is in the window.
    pub fn value(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Number of samples currently inside the window.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

/// From-scratch step-function window mean over raw `(time, value)` points:
/// the linear scan `TimeSeries::time_weighted_mean_cached` must agree with
/// bit for bit, as an implementation independent of both the
/// `partition_point` and the cursor seek.
pub fn naive_time_weighted_mean(
    points: &[(SimTime, f64)],
    from: SimTime,
    to: SimTime,
) -> Option<f64> {
    if to <= from {
        return None;
    }
    let mut acc = 0.0;
    let mut covered = 0.0;
    let mut cursor = from;
    let mut current = None;
    for &(pt, v) in points {
        if pt <= from {
            current = Some(v);
            continue;
        }
        if pt >= to {
            break;
        }
        if let Some(cv) = current {
            let span = (pt - cursor).as_secs_f64();
            acc += cv * span;
            covered += span;
        }
        cursor = pt;
        current = Some(v);
    }
    if let Some(cv) = current {
        let span = (to - cursor).as_secs_f64();
        acc += cv * span;
        covered += span;
    }
    if covered > 0.0 {
        Some(acc / covered)
    } else {
        None
    }
}

/// From-scratch step interpolation: value of the last point at or before
/// `t`, or `default`. The linear-scan oracle for
/// `TimeSeries::value_at_cached`.
pub fn naive_value_at(points: &[(SimTime, f64)], t: SimTime, default: f64) -> f64 {
    points
        .iter()
        .rev()
        .find(|&&(pt, _)| pt <= t)
        .map_or(default, |&(_, v)| v)
}

/// The map-based observation plane the streaming probe tick replaced:
/// CPU samples in a fresh `BTreeMap` keyed by node id, spatial averages
/// summed through map lookups, `VecDeque` moving-average sensors,
/// keep-all series vectors, and a `BTreeMap` heartbeat store. Kept as
/// the oracle `tests/observation_prop.rs` checks the dense-array probe
/// against, and the per-tick workload of
/// [`NaiveLifecycle::run_with_probes`].
pub struct NaiveObservation {
    /// Application-tier CPU sensor (60 s window).
    pub app_sensor: NaiveMovingAverage,
    /// Database-tier CPU sensor (90 s window).
    pub db_sensor: NaiveMovingAverage,
    /// Keep-all spatial-average series, one point per tick.
    pub cpu_app: Vec<(SimTime, f64)>,
    /// Database-tier series.
    pub cpu_db: Vec<(SimTime, f64)>,
    /// All-nodes series.
    pub cpu_all: Vec<(SimTime, f64)>,
    /// Last heartbeat per node, in an ordered map.
    pub heartbeat: BTreeMap<usize, SimTime>,
    /// Probe ticks observed.
    pub ticks: u64,
}

impl NaiveObservation {
    /// An empty observation plane with the given sensor windows.
    pub fn new(app_window: SimDuration, db_window: SimDuration) -> Self {
        NaiveObservation {
            app_sensor: NaiveMovingAverage::new(app_window),
            db_sensor: NaiveMovingAverage::new(db_window),
            cpu_app: Vec::new(),
            cpu_db: Vec::new(),
            cpu_all: Vec::new(),
            heartbeat: BTreeMap::new(),
            ticks: 0,
        }
    }

    /// The historical spatial average: map lookups in node-list order,
    /// summed, over the listed population — the float-operation sequence
    /// the dense-array probe must reproduce exactly.
    pub fn spatial_avg<K: Ord>(samples: &BTreeMap<K, f64>, nodes: &[K]) -> f64 {
        if nodes.is_empty() {
            0.0
        } else {
            nodes.iter().filter_map(|n| samples.get(n)).sum::<f64>() / nodes.len() as f64
        }
    }

    /// Feeds one tick's spatial averages into the sensors and series.
    pub fn observe(&mut self, now: SimTime, app_avg: f64, db_avg: f64, all_avg: f64) {
        self.app_sensor.record(now, app_avg.clamp(0.0, 1.0));
        self.db_sensor.record(now, db_avg.clamp(0.0, 1.0));
        self.cpu_app.push((now, app_avg));
        self.cpu_db.push((now, db_avg));
        self.cpu_all.push((now, all_avg));
        self.ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn naive_lifecycle_completes_requests() {
        let (completed, events) = NaiveLifecycle::new(40, 7).run(SimDuration::from_secs(30));
        assert!(completed > 50, "completed {completed}");
        assert!(events > completed, "events {events}");
        // Deterministic for a fixed seed.
        let again = NaiveLifecycle::new(40, 7).run(SimDuration::from_secs(30));
        assert_eq!((completed, events), again);
    }

    #[test]
    fn naive_probe_plane_runs_deterministically() {
        let run = || {
            NaiveLifecycle::new(40, 7)
                .run_with_probes(SimDuration::from_secs(30), SimDuration::from_secs(1))
        };
        let (completed, events) = run();
        assert!(completed > 50, "completed {completed}");
        // 30 probe ticks fired on top of the request lifecycle.
        let (plain_completed, plain_events) =
            NaiveLifecycle::new(40, 7).run(SimDuration::from_secs(30));
        assert!(events > plain_events, "probes add events");
        assert!(completed <= plain_completed + 50, "probes barely perturb");
        assert_eq!((completed, events), run());
    }

    #[test]
    fn naive_observation_averages_and_windows() {
        let mut samples = BTreeMap::new();
        for (i, v) in [0.5, 0.25, 1.0].into_iter().enumerate() {
            samples.insert(i, v);
        }
        assert_eq!(NaiveObservation::spatial_avg(&samples, &[0, 2]), 0.75);
        assert_eq!(NaiveObservation::spatial_avg::<usize>(&samples, &[]), 0.0);

        let points = [(t(0), 0.0), (t(10_000), 1.0)];
        let m = naive_time_weighted_mean(&points, t(0), t(20_000)).unwrap();
        assert!((m - 0.5).abs() < 1e-9);
        assert!(naive_time_weighted_mean(&points, t(5), t(5)).is_none());
        assert_eq!(naive_value_at(&points, t(9_999), -1.0), 0.0);
        assert_eq!(naive_value_at(&points, t(10_000), -1.0), 1.0);

        let mut ma = NaiveMovingAverage::new(SimDuration::from_secs(10));
        ma.record(SimTime::from_secs(0), 100.0);
        ma.record(SimTime::from_secs(5), 0.0);
        assert_eq!(ma.value(), Some(50.0));
        ma.record(SimTime::from_secs(20), 0.0);
        assert_eq!(ma.sample_count(), 1);
    }

    #[test]
    fn naive_model_still_behaves() {
        let mut cpu = NaivePsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(50), JobId(2), d(100));
        assert_eq!(cpu.next_completion(t(50)).unwrap(), t(150));
        assert_eq!(cpu.collect_completions(t(150)), vec![JobId(1)]);
        assert_eq!(cpu.next_completion(t(150)).unwrap(), t(200));
        assert_eq!(cpu.collect_completions(t(200)), vec![JobId(2)]);
        assert_eq!(cpu.load(), 0);
    }
}
