//! Reference models kept for differential testing and benchmarking.
//!
//! [`NaivePsCpu`] is the original scan-on-advance processor-sharing CPU:
//! it stores each job's *remaining* demand and subtracts the interval's
//! progress from every resident job on each driver call — O(n) per
//! operation. `jade_sim::PsCpu` replaced it with the O(log n) virtual-time
//! formulation (see the module docs of `crates/sim/src/cpu.rs`); this copy
//! is the oracle `tests/cpu_prop.rs` checks the rewrite against, and the
//! baseline the `ps_cpu/naive/*` bench cases measure.
//!
//! [`NaiveDatabase`] is likewise the original name-keyed storage engine:
//! tables are a `BTreeMap<String, _>`, rows are `BTreeMap<String, Value>`
//! column maps, every statement re-resolves its table and column names,
//! and `SelectWhere` is a full scan. `jade_tiers::Database` replaced it
//! with the interned, index-accelerated engine; this copy is the oracle
//! `tests/storage_prop.rs` checks result and digest parity against, and
//! the baseline the `db/naive/*` bench cases measure.

use jade_sim::metrics::UtilizationTracker;
use jade_sim::{EfficiencyCurve, JobId, SimDuration, SimTime};
use jade_tiers::sql::{ColId, Schema, SqlError, Statement, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

#[derive(Debug, Clone)]
struct PsJob {
    id: JobId,
    /// Remaining service demand, in seconds of dedicated CPU.
    remaining: f64,
}

/// Remaining demand below this is considered complete (guards float error).
const EPSILON_SECS: f64 = 1e-9;

/// The original O(n) scan-on-advance processor-sharing CPU.
///
/// Semantically equivalent to `jade_sim::PsCpu` (same driver API, same
/// event-boundary progress rule, same timer rounding); kept verbatim as a
/// reference model.
#[derive(Debug, Clone)]
pub struct NaivePsCpu {
    speed: f64,
    curve: EfficiencyCurve,
    jobs: Vec<PsJob>,
    last_update: SimTime,
    util: UtilizationTracker,
    completed: Vec<JobId>,
}

impl NaivePsCpu {
    /// Creates a CPU with `speed` demand-seconds/second capacity (1.0 = one
    /// reference core) and the given degradation curve.
    pub fn new(speed: f64, curve: EfficiencyCurve) -> Self {
        assert!(speed > 0.0);
        NaivePsCpu {
            speed,
            curve,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            util: UtilizationTracker::new(),
            completed: Vec::new(),
        }
    }

    /// Number of resident (incomplete) jobs.
    pub fn load(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job progress rate right now, in demand-seconds per second.
    fn rate(&self) -> f64 {
        let n = self.jobs.len();
        if n == 0 {
            0.0
        } else {
            self.speed * self.curve.efficiency(n) / n as f64
        }
    }

    /// Advances all jobs to `now`, moving finished jobs to the completed
    /// buffer.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update);
        let elapsed = (now - self.last_update).as_secs_f64();
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let progress = elapsed * self.rate();
            for job in &mut self.jobs {
                job.remaining -= progress;
            }
        }
        self.last_update = now;
        let completed = &mut self.completed;
        self.jobs.retain(|j| {
            if j.remaining <= EPSILON_SECS {
                completed.push(j.id);
                false
            } else {
                true
            }
        });
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
    }

    /// Submits a job with the given total demand.
    pub fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration) {
        self.advance(now);
        self.util.set_busy(now);
        self.jobs.push(PsJob {
            id,
            remaining: demand.as_secs_f64().max(EPSILON_SECS),
        });
    }

    /// Forcibly removes a job. Returns true if the job was resident.
    pub fn abort(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        let before = self.jobs.len();
        self.jobs.retain(|j| j.id != id);
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
        self.jobs.len() != before
    }

    /// Removes all jobs, returning their ids in submission order.
    pub fn abort_all(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let ids = self.jobs.drain(..).map(|j| j.id).collect();
        self.util.set_idle(now);
        ids
    }

    /// Time of the next job completion given the current population, or
    /// `None` when idle.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        // Round *up* to the next microsecond so the timer never fires
        // before the job is actually done.
        let micros = (min_remaining / rate * 1e6).ceil() as u64;
        Some(now + SimDuration::from_micros(micros.max(1)))
    }

    /// Advances to `now` and drains the jobs that have completed.
    pub fn collect_completions(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        std::mem::take(&mut self.completed)
    }

    /// CPU utilization since the previous call.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.util.sample(now)
    }

    /// Total busy time up to `now`.
    pub fn busy_time(&mut self, now: SimTime) -> SimDuration {
        self.advance(now);
        self.util.busy_time(now)
    }
}

/// A name-keyed row: column name → value (absent columns are NULL).
pub type NaiveRow = BTreeMap<String, Value>;

/// Result of a [`NaiveDatabase`] statement.
#[derive(Debug, Clone, PartialEq)]
pub enum NaiveQueryResult {
    /// DDL / write acknowledgement; for inserts carries the assigned key.
    Ack {
        /// Primary key assigned by an insert, when applicable.
        inserted_key: Option<u64>,
        /// Number of rows affected.
        affected: u64,
    },
    /// Rows returned by a select, as `(key, row)` pairs (deep-cloned).
    Rows(Vec<(u64, NaiveRow)>),
    /// Count result.
    Count(u64),
}

#[derive(Debug, Clone, Default)]
struct NaiveTable {
    rows: BTreeMap<u64, NaiveRow>,
    next_key: u64,
}

/// The original name-keyed, scan-everything storage engine.
///
/// Statements arrive interned (the shared `Statement` type), but every
/// execution resolves the table and column ids back to names through the
/// schema and then looks them up in string-keyed maps — reproducing the
/// per-request hashing and allocation the replaced engine paid. NULLs are
/// never stored: an insert skips them and an update-to-NULL removes the
/// column, which is what makes [`NaiveDatabase::digest`] agree with the
/// interned engine's.
#[derive(Debug, Clone, Default)]
pub struct NaiveDatabase {
    tables: BTreeMap<String, NaiveTable>,
}

impl NaiveDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        NaiveDatabase::default()
    }

    /// Executes one statement, resolving every identifier by name.
    pub fn execute(
        &mut self,
        schema: &Schema,
        stmt: &Statement,
    ) -> Result<NaiveQueryResult, SqlError> {
        let name = schema.table_name(stmt.table());
        match stmt {
            Statement::CreateTable { .. } => {
                self.tables.entry(name.to_owned()).or_default();
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected: 0,
                })
            }
            Statement::Insert { table, row } => {
                let def = schema.table(*table).expect("table in catalog");
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let key = t.next_key;
                t.next_key += 1;
                let mut cols = NaiveRow::new();
                for (ci, v) in row.iter().enumerate() {
                    if !v.is_null() {
                        cols.insert(def.column(ColId(ci as u16)).to_owned(), v.clone());
                    }
                }
                t.rows.insert(key, cols);
                Ok(NaiveQueryResult::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            Statement::Update { table, key, set } => {
                let def = schema.table(*table).expect("table in catalog");
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let affected = match t.rows.get_mut(key) {
                    Some(row) => {
                        for (col, v) in set {
                            let col_name = def.column(*col);
                            if v.is_null() {
                                row.remove(col_name);
                            } else {
                                row.insert(col_name.to_owned(), v.clone());
                            }
                        }
                        1
                    }
                    None => 0,
                };
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::Delete { key, .. } => {
                let t = self
                    .tables
                    .get_mut(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                let affected = u64::from(t.rows.remove(key).is_some());
                Ok(NaiveQueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::SelectByKey { key, .. } => {
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                Ok(NaiveQueryResult::Rows(
                    t.rows
                        .get(key)
                        .map(|r| (*key, r.clone()))
                        .into_iter()
                        .collect(),
                ))
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let def = schema.table(*table).expect("table in catalog");
                let col_name = def.column(*column);
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                if value.is_null() {
                    return Ok(NaiveQueryResult::Rows(Vec::new()));
                }
                Ok(NaiveQueryResult::Rows(
                    t.rows
                        .iter()
                        .filter(|(_, r)| r.get(col_name) == Some(value))
                        .take(*limit)
                        .map(|(k, r)| (*k, r.clone()))
                        .collect(),
                ))
            }
            Statement::Count { .. } => {
                let t = self
                    .tables
                    .get(name)
                    .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))?;
                Ok(NaiveQueryResult::Count(t.rows.len() as u64))
            }
        }
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }

    /// Content digest — the algorithm `jade_tiers::Database::digest`
    /// reproduces byte for byte.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (name, t) in &self.tables {
            name.hash(&mut h);
            t.next_key.hash(&mut h);
            for (key, row) in &t.rows {
                key.hash(&mut h);
                for (col, v) in row {
                    match v {
                        Value::Null => {}
                        Value::Int(i) => {
                            col.hash(&mut h);
                            i.hash(&mut h);
                        }
                        Value::Text(s) => {
                            col.hash(&mut h);
                            s.hash(&mut h);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn naive_model_still_behaves() {
        let mut cpu = NaivePsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(50), JobId(2), d(100));
        assert_eq!(cpu.next_completion(t(50)).unwrap(), t(150));
        assert_eq!(cpu.collect_completions(t(150)), vec![JobId(1)]);
        assert_eq!(cpu.next_completion(t(150)).unwrap(), t(200));
        assert_eq!(cpu.collect_completions(t(200)), vec![JobId(2)]);
        assert_eq!(cpu.load(), 0);
    }
}
