//! Argument parsing for the `run_experiment` binary — a tiny hand-rolled
//! flag parser (no external dependency) mapping CLI flags onto
//! [`SystemConfig`].

use jade::adl::J2eeDescription;
use jade::config::SystemConfig;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

/// Parsed invocation.
#[derive(Debug, Clone)]
pub struct CliRun {
    /// Experiment configuration.
    pub cfg: SystemConfig,
    /// Virtual-time horizon.
    pub duration: SimDuration,
    /// Prefix for TSV outputs (None = don't write files).
    pub out_prefix: Option<String>,
    /// Record and print a management-plane trace.
    pub trace: bool,
}

/// Usage text.
pub const USAGE: &str = "\
usage: run_experiment [flags]
  --clients N        constant workload of N emulated clients (default: paper ramp)
  --duration SECS    virtual-time horizon in seconds (default 3000)
  --seed N           RNG seed (default 42)
  --nodes N          node-pool size (default 9)
  --unmanaged        disable Jade's reconfiguration (baseline runs)
  --adl PATH         deploy the architecture described in an ADL XML file
  --markov           navigate clients through the RUBiS transition table
  --browsing         use the read-only browsing mix instead of bidding
  --patience SECS    clients abandon requests slower than SECS
  --arbitration      route manager decisions through the policy arbitrator
  --self-repair      enable the self-recovery manager
  --adaptive         enable adaptive thresholds
  --latency-driver   drive the loops with response time instead of CPU
  --out PREFIX       write metric series to PREFIX_<series>.tsv
  --trace            record and print the management-plane trace
  --help             this text
";

/// Parse errors carry the message to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn value<'a, I: Iterator<Item = &'a str>>(flag: &str, args: &mut I) -> Result<&'a str, CliError> {
    args.next()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{flag}: '{s}' is not a valid number")))
}

/// True when `JADE_BENCH_FAST` is set: benchmark runners shrink their
/// sample budgets (used by CI smoke runs).
///
/// This module is the one place the workspace reads process environment
/// (`jade-audit`'s `nondet-env` rule enforces it); benchmark code
/// consults the knob through here so runs stay self-describing.
pub fn bench_fast() -> bool {
    std::env::var_os("JADE_BENCH_FAST").is_some()
}

/// Parses CLI arguments (excluding `argv[0]`). `read_file` abstracts file
/// access so tests need no filesystem.
pub fn parse_args<'a>(
    args: impl IntoIterator<Item = &'a str>,
    read_file: impl Fn(&str) -> Result<String, String>,
) -> Result<CliRun, CliError> {
    let mut cfg = SystemConfig::paper_managed();
    let mut duration = SimDuration::from_secs(3000);
    let mut out_prefix = None;
    let mut trace = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg {
            "--clients" => {
                let n: u32 = parse_num(arg, value(arg, &mut args)?)?;
                if n == 0 {
                    return Err(CliError("--clients must be >= 1".into()));
                }
                cfg.ramp = WorkloadRamp::constant(n);
            }
            "--duration" => {
                let secs: u64 = parse_num(arg, value(arg, &mut args)?)?;
                duration = SimDuration::from_secs(secs);
            }
            "--seed" => cfg.seed = parse_num(arg, value(arg, &mut args)?)?,
            "--nodes" => {
                cfg.nodes = parse_num(arg, value(arg, &mut args)?)?;
                if cfg.nodes == 0 {
                    return Err(CliError("--nodes must be >= 1".into()));
                }
            }
            "--unmanaged" => cfg.jade.managed = false,
            "--adl" => {
                let path = value(arg, &mut args)?;
                let xml = read_file(path).map_err(CliError)?;
                cfg.description = J2eeDescription::from_xml(&xml)
                    .map_err(|e| CliError(format!("{path}: {e}")))?;
            }
            "--markov" => cfg.markov_navigation = true,
            "--browsing" => cfg.browsing_mix = true,
            "--patience" => {
                let secs: u64 = parse_num(arg, value(arg, &mut args)?)?;
                cfg.client_patience = Some(SimDuration::from_secs(secs));
            }
            "--arbitration" => cfg.jade.arbitration = true,
            "--self-repair" => cfg.jade.self_repair = true,
            "--adaptive" => cfg.jade.adaptive = true,
            "--latency-driver" => cfg.jade.latency_driver = true,
            "--out" => out_prefix = Some(value(arg, &mut args)?.to_owned()),
            "--trace" => trace = true,
            "--help" | "-h" => return Err(CliError(USAGE.to_owned())),
            other => return Err(CliError(format!("unknown flag '{other}'\n{USAGE}"))),
        }
    }
    if cfg.nodes < cfg.description.initial_nodes() {
        return Err(CliError(format!(
            "the described architecture needs {} nodes but the pool has {}",
            cfg.description.initial_nodes(),
            cfg.nodes
        )));
    }
    Ok(CliRun {
        cfg,
        duration,
        out_prefix,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_fs(_: &str) -> Result<String, String> {
        Err("no filesystem in tests".into())
    }

    #[test]
    fn defaults_are_the_paper_run() {
        let run = parse_args([], no_fs).unwrap();
        assert_eq!(run.duration, SimDuration::from_secs(3000));
        assert!(run.cfg.jade.managed);
        assert_eq!(run.cfg.seed, 42);
        assert!(run.out_prefix.is_none());
        assert!(!run.trace);
    }

    #[test]
    fn flags_map_onto_config() {
        let run = parse_args(
            [
                "--clients",
                "120",
                "--duration",
                "600",
                "--seed",
                "7",
                "--unmanaged",
                "--markov",
                "--arbitration",
                "--self-repair",
                "--adaptive",
                "--latency-driver",
                "--out",
                "results/run1",
                "--trace",
                "--browsing",
                "--patience",
                "15",
            ],
            no_fs,
        )
        .unwrap();
        assert_eq!(run.cfg.ramp.base_clients, 120);
        assert_eq!(run.cfg.ramp.peak_clients, 120);
        assert_eq!(run.duration, SimDuration::from_secs(600));
        assert_eq!(run.cfg.seed, 7);
        assert!(!run.cfg.jade.managed);
        assert!(run.cfg.markov_navigation);
        assert!(run.cfg.jade.arbitration);
        assert!(run.cfg.jade.self_repair);
        assert!(run.cfg.jade.adaptive);
        assert!(run.cfg.jade.latency_driver);
        assert_eq!(run.out_prefix.as_deref(), Some("results/run1"));
        assert!(run.trace);
        assert!(run.cfg.browsing_mix);
        assert_eq!(run.cfg.client_patience, Some(SimDuration::from_secs(15)));
    }

    #[test]
    fn adl_flag_reads_and_validates() {
        let read = |path: &str| {
            assert_eq!(path, "arch.xml");
            Ok(r#"<j2ee name="x">
                    <tier kind="application" replicas="2"/>
                    <tier kind="database" replicas="2"/>
                  </j2ee>"#
                .to_owned())
        };
        let run = parse_args(["--adl", "arch.xml"], read).unwrap();
        assert_eq!(run.cfg.description.application.replicas, 2);
        // Bad XML is a parse error, not a panic.
        let bad = parse_args(["--adl", "arch.xml"], |_| Ok("<nope/>".into()));
        assert!(bad.is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_args(["--clients"], no_fs)
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(parse_args(["--clients", "zero"], no_fs)
            .unwrap_err()
            .0
            .contains("not a valid number"));
        assert!(parse_args(["--wat"], no_fs)
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse_args(["--clients", "0"], no_fs)
            .unwrap_err()
            .0
            .contains(">= 1"));
        assert!(parse_args(["--help"], no_fs)
            .unwrap_err()
            .0
            .contains("usage"));
    }

    #[test]
    fn pool_must_fit_the_architecture() {
        let err = parse_args(["--nodes", "2"], no_fs).unwrap_err();
        assert!(err.0.contains("needs"), "{err}");
    }
}
