//! # jade-hot — the `#[jade_hot]` hot-path marker
//!
//! A dependency-free attribute macro that expands to exactly the item it
//! annotates. Its only purpose is to mark the event-loop entry points of
//! the simulation (the functions executed once per delivered event) so
//! that `jade-audit`'s `hot-panic` rule can hold them to a stricter
//! standard: no `unwrap`/`expect`/indexing without a reasoned
//! `// jade-audit: allow(hot-panic)` suppression documenting the
//! invariant that makes the panic unreachable.
//!
//! Being a real attribute (rather than a naming convention) means the
//! marker survives refactors: it moves with the function, shows up in
//! rustdoc, and a typo'd `#[jade_hott]` fails to compile instead of
//! silently unmarking the hot path.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as a simulation hot path. Expands to the unchanged
/// item; `jade-audit` enforces the `hot-panic` rule inside marked
/// functions.
#[proc_macro_attribute]
pub fn jade_hot(attr: TokenStream, item: TokenStream) -> TokenStream {
    assert!(
        attr.is_empty(),
        "#[jade_hot] takes no arguments; use // jade-audit: allow(hot-panic): <reason> \
         to suppress diagnostics inside the function"
    );
    item
}
