//! Policy arbitration between autonomic managers (paper §7, future work):
//! "Managers have their own goal and control loops and therefore require a
//! way to arbitrate potential conflicts."
//!
//! The arbitrator is a serialization point between the self-optimization
//! and self-recovery managers. Managers *submit* reconfiguration requests
//! instead of acting directly; the arbitrator
//!
//! * serializes execution (one reconfiguration at a time, matching the
//!   paper's observation that concurrent reconfigurations conflict),
//! * prioritizes repair over optimization (a broken replica must be fixed
//!   before resizing decisions mean anything),
//! * coalesces conflicting requests: a pending scale-up and scale-down on
//!   the same tier cancel out, duplicates collapse, and a repair on a
//!   tier invalidates pending optimization requests for it (the repair
//!   changes the capacity the optimizer reasoned about).

use crate::system::ManagedTier;
use jade_sim::SimTime;
use jade_tiers::ServerId;
use std::collections::VecDeque;

/// Which manager produced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The self-optimization manager of a tier.
    SelfOptimization,
    /// The self-recovery manager.
    SelfRecovery,
}

/// A requested reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Add one replica to the tier.
    ScaleUp(ManagedTier),
    /// Remove one replica from the tier.
    ScaleDown(ManagedTier),
    /// Repair a failed replica.
    Repair(ServerId),
}

impl Action {
    /// Tier the action concerns, when tier-scoped.
    pub fn tier(&self) -> Option<ManagedTier> {
        match self {
            Action::ScaleUp(t) | Action::ScaleDown(t) => Some(*t),
            Action::Repair(_) => None,
        }
    }

    /// True when `self` and `other` pull the same tier in opposite
    /// directions.
    fn opposes(&self, other: &Action) -> bool {
        matches!(
            (self, other),
            (Action::ScaleUp(a), Action::ScaleDown(b)) | (Action::ScaleDown(a), Action::ScaleUp(b))
                if a == b
        )
    }
}

/// A submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Originating manager.
    pub source: Source,
    /// Requested reconfiguration.
    pub action: Action,
    /// Submission time (FIFO within a priority class).
    pub submitted: SimTime,
}

impl Request {
    fn priority(&self) -> u8 {
        match self.source {
            Source::SelfRecovery => 1,
            Source::SelfOptimization => 0,
        }
    }
}

/// Outcome of submitting a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued for execution.
    Queued,
    /// Dropped as a duplicate of a pending request.
    Duplicate,
    /// Cancelled out against an opposing pending request (which was also
    /// removed).
    Cancelled,
    /// Dropped because a pending repair supersedes it.
    Superseded,
}

/// The arbitration manager.
#[derive(Debug, Default)]
pub struct Arbitrator {
    queue: VecDeque<Request>,
    executing: bool,
    submitted: u64,
    dropped: u64,
    executed: u64,
}

impl Arbitrator {
    /// Creates an idle arbitrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a request, applying the conflict rules.
    pub fn submit(&mut self, req: Request) -> SubmitOutcome {
        self.submitted += 1;
        if self.queue.iter().any(|r| r.action == req.action) {
            self.dropped += 1;
            return SubmitOutcome::Duplicate;
        }
        // Pending repair on the same tier supersedes optimization.
        if req.source == Source::SelfOptimization
            && self.queue.iter().any(|r| r.source == Source::SelfRecovery)
        {
            self.dropped += 1;
            return SubmitOutcome::Superseded;
        }
        if let Some(pos) = self
            .queue
            .iter()
            .position(|r| r.action.opposes(&req.action))
        {
            // Opposing intents cancel: the system is already where both
            // managers jointly want it.
            self.queue.remove(pos);
            self.dropped += 2;
            return SubmitOutcome::Cancelled;
        }
        // Repairs invalidate pending optimization of the same tier — the
        // capacity they reasoned about is about to change.
        if req.source == Source::SelfRecovery {
            let before = self.queue.len();
            self.queue.retain(|r| r.source != Source::SelfOptimization);
            self.dropped += (before - self.queue.len()) as u64;
        }
        self.queue.push_back(req);
        SubmitOutcome::Queued
    }

    /// Pops the next request to execute, if the arbitrator is idle:
    /// highest priority first, FIFO within a class. The caller must call
    /// [`Arbitrator::complete`] when the reconfiguration finishes.
    #[allow(clippy::should_implement_trait)] // not an iterator: gated by `executing`
    pub fn next(&mut self) -> Option<Request> {
        if self.executing || self.queue.is_empty() {
            return None;
        }
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.priority()
                    .cmp(&b.priority())
                    // FIFO within a class: earlier submission (and lower
                    // index) wins, so invert the index comparison.
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)?;
        let req = self.queue.remove(best)?;
        self.executing = true;
        self.executed += 1;
        Some(req)
    }

    /// Marks the current reconfiguration finished.
    pub fn complete(&mut self) {
        self.executing = false;
    }

    /// True while a reconfiguration is executing.
    pub fn is_executing(&self) -> bool {
        self.executing
    }

    /// Pending queue length.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters: `(submitted, dropped, executed)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.submitted, self.dropped, self.executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(action: Action, t: u64) -> Request {
        Request {
            source: Source::SelfOptimization,
            action,
            submitted: SimTime::from_secs(t),
        }
    }

    fn rec(server: u32, t: u64) -> Request {
        Request {
            source: Source::SelfRecovery,
            action: Action::Repair(ServerId(server)),
            submitted: SimTime::from_secs(t),
        }
    }

    #[test]
    fn serializes_execution() {
        let mut a = Arbitrator::new();
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0));
        a.submit(opt(Action::ScaleUp(ManagedTier::Application), 1));
        let first = a.next().expect("first request");
        assert_eq!(first.action, Action::ScaleUp(ManagedTier::Database));
        // Nothing else until completion.
        assert!(a.next().is_none());
        a.complete();
        assert!(a.next().is_some());
    }

    #[test]
    fn recovery_preempts_optimization() {
        let mut a = Arbitrator::new();
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0));
        a.submit(rec(7, 1));
        let first = a.next().unwrap();
        assert_eq!(first.source, Source::SelfRecovery);
    }

    #[test]
    fn repair_supersedes_pending_and_future_optimization() {
        let mut a = Arbitrator::new();
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0));
        assert_eq!(a.submit(rec(7, 1)), SubmitOutcome::Queued);
        // The pending optimization was invalidated…
        assert_eq!(a.pending(), 1);
        // …and new optimization is refused while the repair is pending.
        assert_eq!(
            a.submit(opt(Action::ScaleDown(ManagedTier::Application), 2)),
            SubmitOutcome::Superseded
        );
    }

    #[test]
    fn opposing_requests_cancel() {
        let mut a = Arbitrator::new();
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0));
        assert_eq!(
            a.submit(opt(Action::ScaleDown(ManagedTier::Database), 1)),
            SubmitOutcome::Cancelled
        );
        assert_eq!(a.pending(), 0);
        // Different tiers do not cancel.
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 2));
        assert_eq!(
            a.submit(opt(Action::ScaleDown(ManagedTier::Application), 3)),
            SubmitOutcome::Queued
        );
        assert_eq!(a.pending(), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let mut a = Arbitrator::new();
        assert_eq!(
            a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0)),
            SubmitOutcome::Queued
        );
        assert_eq!(
            a.submit(opt(Action::ScaleUp(ManagedTier::Database), 1)),
            SubmitOutcome::Duplicate
        );
        assert_eq!(a.pending(), 1);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut a = Arbitrator::new();
        a.submit(rec(1, 0));
        a.submit(rec(2, 1));
        assert_eq!(a.next().unwrap().action, Action::Repair(ServerId(1)));
        a.complete();
        assert_eq!(a.next().unwrap().action, Action::Repair(ServerId(2)));
    }

    #[test]
    fn counters_track_activity() {
        let mut a = Arbitrator::new();
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 0));
        a.submit(opt(Action::ScaleUp(ManagedTier::Database), 1)); // dup
        a.next();
        let (submitted, dropped, executed) = a.counters();
        assert_eq!((submitted, dropped, executed), (2, 1, 1));
    }
}
