//! The managed system: the whole experiment as one discrete-event
//! application.
//!
//! [`J2eeApp`] owns the legacy layer, the Fractal management layer, the
//! emulated clients and Jade's autonomic managers, and routes every
//! virtual-time event between them. It is the Rust counterpart of the
//! paper's testbed: up to nine nodes running PLB → Tomcat* → C-JDBC →
//! MySQL* under the RUBiS workload, managed (or not) by Jade.

mod admin;
mod manage;
mod msg;
mod workload;

pub use msg::{DeployPhase, JobOwner, ManagedTier, Msg, PendingDeploy, RequestPhase, RequestState};

use crate::config::SystemConfig;
use crate::control::{AdaptiveThresholds, CpuAvgSensor, InhibitionWindow, ThresholdReactor};
use jade_cluster::SoftwareRepository;
use jade_cluster::{ClusterManager, Network, NodeId, SoftwareInstallationService};
use jade_fractal::{ComponentId, InterfaceDecl, Registry};
use jade_rubis::{dataset_statements, rubis_schema, EmulatedClient, KeySpace, StatsCollector};
use jade_sim::{App, Ctx, EventToken, GenSlab, JobId, SimDuration, SimTime, SlabKey};
use jade_tiers::wrappers::{BalancerWrapper, CjdbcWrapper, MysqlWrapper, TomcatWrapper};
use jade_tiers::{LegacyEvent, LegacyLayer, RequestId, ServerId, SqlOp};
use std::collections::{BTreeMap, VecDeque};

/// One emulated client and its scheduling state.
#[derive(Debug)]
pub(crate) struct ClientSlot {
    pub(crate) client: EmulatedClient,
    /// Part of the current target population.
    pub(crate) active: bool,
    /// Has a request or think-timer in flight (prevents double-scheduling).
    pub(crate) busy: bool,
}

/// One tier's self-optimization control loop (sensor + reactor; the
/// actuator is the scale-up/down workflow implemented by the app).
#[derive(Debug)]
pub struct TierManager {
    /// Managed tier.
    pub tier: ManagedTier,
    /// CPU sensor with the tier's smoothing window.
    pub sensor: CpuAvgSensor,
    /// Threshold decision logic.
    pub reactor: ThresholdReactor,
    /// Optional adaptive thresholds (paper §7 extension).
    pub adaptive: Option<AdaptiveThresholds>,
    /// The manager's own component in the management layer ("Jade
    /// administrates itself", §3.4).
    pub comp: ComponentId,
}

/// The simulated managed system.
pub struct J2eeApp {
    /// Experiment configuration.
    pub cfg: SystemConfig,
    /// The legacy layer (servers, cluster, configs).
    pub legacy: LegacyLayer,
    /// The management layer.
    pub registry: Registry<LegacyLayer>,
    /// Root composite of the managed architecture.
    pub root: ComponentId,
    /// Composite holding the (optional) static web tier.
    pub web_tier: ComponentId,
    /// Composite holding the application tier.
    pub app_tier: ComponentId,
    /// Composite holding the database tier.
    pub db_tier: ComponentId,
    /// L4 switch front-end (web-tier topologies).
    pub l4: Option<(ServerId, ComponentId)>,
    /// PLB front-end (server, component).
    pub plb: Option<(ServerId, ComponentId)>,
    /// C-JDBC controller (server, component).
    pub cjdbc: Option<(ServerId, ComponentId)>,
    /// Client-side statistics.
    pub stats: StatsCollector,
    /// The self-optimization managers (application and database loops).
    pub managers: Vec<TierManager>,
    /// Reconfiguration journal `(time, description)`.
    pub reconfig_log: Vec<(SimTime, String)>,

    pub(crate) comp_of_server: BTreeMap<ServerId, ComponentId>,
    pub(crate) tomcat_seq: u32,
    pub(crate) mysql_seq: u32,
    pub(crate) apache_seq: u32,

    pub(crate) clients: Vec<ClientSlot>,
    /// Aggregate-mode client population (`Some` iff
    /// `cfg.client_mode` is [`crate::config::ClientMode::Aggregate`]);
    /// `clients` stays empty in that mode.
    pub(crate) pool: Option<jade_rubis::ClientPool>,
    /// Recycled issuance buffer of the aggregate pool tick:
    /// `(dispatch offset, return bucket, interaction index)`.
    pub(crate) pool_scratch: Vec<(SimDuration, u32, u32)>,
    pub(crate) ks: KeySpace,
    pub(crate) transitions: jade_rubis::TransitionMatrix,
    pub(crate) mix: jade_rubis::InteractionMix,
    /// In-flight requests in a generational slab: the public `RequestId`
    /// is the packed `{generation, slot}` key, so every per-event lookup
    /// is O(1) array indexing and a stale id (e.g. an abandon timer that
    /// outlived its request) provably misses instead of hitting whatever
    /// request reused the slot.
    pub(crate) inflight: GenSlab<RequestState>,
    /// Per-Tomcat accept queues, indexed densely by `ServerId.0` (server
    /// ids are interned sequentially at create-server time and never
    /// recycled — see `LegacyLayer::server_index_bound`).
    pub(crate) accept_queues: Vec<VecDeque<RequestId>>,
    /// Creation-order stamp for the next request (slab slots recycle, so
    /// ordering needs its own counter).
    pub(crate) next_request_seq: u64,

    /// CPU-job owners in a generational slab keyed by the packed `JobId`.
    pub(crate) job_owner: GenSlab<JobOwner>,
    /// Pending `CpuComplete` timer per node, indexed densely by
    /// `NodeId.0` (the node pool is fixed at configuration time).
    pub(crate) cpu_timers: Vec<Option<EventToken>>,
    /// Recycled buffer for draining CPU completions on each timer fire
    /// (the hottest per-event path), so the drain never allocates.
    pub(crate) completion_scratch: Vec<JobId>,
    /// Recycled `plan.sql` allocations of retired requests, reused by the
    /// workload generator for new plans.
    pub(crate) sql_recycle: Vec<Vec<SqlOp>>,
    /// Recycled compiled-run buffers (parameter values + per-step
    /// demands) of retired requests — the compiled generator's
    /// counterpart of `sql_recycle`, giving the hot path zero
    /// steady-state allocation.
    pub(crate) param_recycle: Vec<(Vec<jade_tiers::sql::Value>, Vec<jade_sim::SimDuration>)>,
    /// Recycled broadcast-target buffer for the DB write path: each write
    /// fills it via `cjdbc_execute_write_into` instead of allocating a
    /// fresh targets `Vec` (zero steady-state allocation).
    pub(crate) db_write_targets: Vec<ServerId>,
    /// Recycled per-request job lists of retired requests.
    pub(crate) jobs_recycle: Vec<Vec<JobId>>,

    pub(crate) inhibition: InhibitionWindow,
    /// The policy-arbitration manager, when enabled (paper §7).
    pub arbitrator: Option<crate::arbitration::Arbitrator>,
    pub(crate) app_busy: bool,
    pub(crate) db_busy: bool,
    pub(crate) pending_deploys: BTreeMap<ServerId, PendingDeploy>,
    pub(crate) pending_undeploys: BTreeMap<ServerId, ManagedTier>,
    pub(crate) latest_app_cpu: f64,
    pub(crate) latest_db_cpu: f64,
    /// Last heartbeat received from each node's management daemon,
    /// indexed densely by `NodeId.0` (the node pool is fixed at
    /// configuration time; `None` = never heard from).
    pub(crate) last_heartbeat: Vec<Option<jade_sim::SimTime>>,
    /// Recycled dense per-node CPU sample array of the probe tick:
    /// `probe_samples[i]` is the utilization of `NodeId(i)`.
    pub(crate) probe_samples: Vec<f64>,
    /// Recycled node-id list of the application tier (probe tick).
    pub(crate) probe_app_nodes: Vec<NodeId>,
    /// Recycled node-id list of the database tier (probe tick).
    pub(crate) probe_db_nodes: Vec<NodeId>,
    /// Recycled allocated-node list (probe tick).
    pub(crate) probe_allocated: Vec<NodeId>,
    /// A rolling restart in progress, if any.
    pub(crate) rolling: Option<RollingRestart>,
    /// Interned metric handles for the hot recording paths (lazy).
    pub(crate) hot_ids: Option<HotMetricIds>,
}

/// Interned metric handles: the per-request and per-probe recording paths
/// use these instead of string names, skipping allocation and hashing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotMetricIds {
    pub cpu_app: jade_sim::SeriesId,
    pub cpu_db: jade_sim::SeriesId,
    pub mem_avg: jade_sim::SeriesId,
    pub cpu_all: jade_sim::SeriesId,
    pub nodes_allocated: jade_sim::SeriesId,
    pub replicas_app: jade_sim::SeriesId,
    pub replicas_db: jade_sim::SeriesId,
    pub clients: jade_sim::SeriesId,
    pub latency: jade_sim::HistogramId,
    pub completed: jade_sim::CounterId,
    pub failed: jade_sim::CounterId,
    pub abandoned: jade_sim::CounterId,
}

impl HotMetricIds {
    fn intern(hub: &mut jade_sim::MetricsHub) -> Self {
        HotMetricIds {
            cpu_app: hub.series_id("cpu.app"),
            cpu_db: hub.series_id("cpu.db"),
            mem_avg: hub.series_id("mem.avg"),
            cpu_all: hub.series_id("cpu.all"),
            nodes_allocated: hub.series_id("nodes.allocated"),
            replicas_app: hub.series_id("replicas.app"),
            replicas_db: hub.series_id("replicas.db"),
            clients: hub.series_id("clients"),
            latency: hub.histogram_id("latency"),
            completed: hub.counter_id("requests.completed"),
            failed: hub.counter_id("requests.failed"),
            abandoned: hub.counter_id("requests.abandoned"),
        }
    }
}

/// State of a rolling-restart administration operation.
#[derive(Debug)]
pub struct RollingRestart {
    /// Tier being restarted.
    pub tier: ManagedTier,
    /// Replicas still to bounce.
    pub queue: VecDeque<ServerId>,
    /// Replica currently out of rotation.
    pub current: Option<ServerId>,
    /// Replicas restarted so far.
    pub done: usize,
}

impl J2eeApp {
    /// Builds the (not yet deployed) system. Send [`Msg::Bootstrap`] at
    /// t=0 to deploy the initial architecture and start the ticks.
    pub fn new(cfg: SystemConfig) -> Self {
        let cluster = ClusterManager::homogeneous(cfg.nodes, cfg.node_spec, cfg.base_mem_mb);
        let sis = SoftwareInstallationService::new(SoftwareRepository::j2ee_catalogue());
        let legacy = LegacyLayer::new(cluster, Network::lan_100mbps(), sis);
        let mut registry: Registry<LegacyLayer> = Registry::new();
        let root = registry.new_composite(&cfg.description.name, vec![]);
        let web_tier = registry.new_composite("web-tier", vec![]);
        let app_tier = registry.new_composite("application-tier", vec![]);
        let db_tier = registry.new_composite("database-tier", vec![]);
        if cfg.description.web.is_some() {
            registry
                .add_child(root, web_tier)
                .expect("fresh composites");
        }
        registry
            .add_child(root, app_tier)
            .expect("fresh composites");
        registry.add_child(root, db_tier).expect("fresh composites");

        // Jade's own architecture: the managers are components too.
        let jade_root = registry.new_composite("jade", vec![]);
        let mut managers = Vec::new();
        for (name, tier, loop_cfg) in [
            (
                "self-optimization-app",
                ManagedTier::Application,
                cfg.jade.app_loop,
            ),
            (
                "self-optimization-db",
                ManagedTier::Database,
                cfg.jade.db_loop,
            ),
        ] {
            let mgr_comp = registry.new_composite(name, vec![]);
            for part in ["sensor", "reactor", "actuator"] {
                let c = registry.new_primitive(
                    &format!("{name}.{part}"),
                    vec![],
                    Box::new(jade_fractal::NullWrapper),
                );
                registry.add_child(mgr_comp, c).expect("fresh manager part");
            }
            registry.add_child(jade_root, mgr_comp).expect("fresh");
            let reactor = ThresholdReactor::new(
                loop_cfg.min_threshold,
                loop_cfg.max_threshold,
                loop_cfg.min_replicas,
                loop_cfg.max_replicas,
            );
            managers.push(TierManager {
                tier,
                sensor: CpuAvgSensor::with_period(loop_cfg.window, cfg.jade.probe_period),
                reactor,
                adaptive: cfg.jade.adaptive.then(|| AdaptiveThresholds::new(reactor)),
                comp: mgr_comp,
            });
        }

        let stats = StatsCollector::new(cfg.stats_window);
        let inhibition = InhibitionWindow::new(cfg.jade.inhibition);
        let cfg_arbitration = cfg.jade.arbitration;
        let cfg_browsing = cfg.browsing_mix;
        let cfg_aggregate = matches!(cfg.client_mode, crate::config::ClientMode::Aggregate { .. });
        let ks: KeySpace = cfg.dataset.into();
        J2eeApp {
            cfg,
            legacy,
            registry,
            root,
            web_tier,
            app_tier,
            db_tier,
            l4: None,
            plb: None,
            cjdbc: None,
            stats,
            managers,
            reconfig_log: Vec::new(),
            comp_of_server: BTreeMap::new(),
            tomcat_seq: 0,
            mysql_seq: 0,
            apache_seq: 0,
            clients: Vec::new(),
            pool: cfg_aggregate.then(jade_rubis::ClientPool::new),
            pool_scratch: Vec::new(),
            ks,
            transitions: jade_rubis::TransitionMatrix::bidding_mix(),
            mix: if cfg_browsing {
                jade_rubis::InteractionMix::browsing()
            } else {
                jade_rubis::InteractionMix::bidding()
            },
            inflight: GenSlab::new(),
            accept_queues: Vec::new(),
            next_request_seq: 0,
            job_owner: GenSlab::new(),
            cpu_timers: Vec::new(),
            completion_scratch: Vec::new(),
            sql_recycle: Vec::new(),
            param_recycle: Vec::new(),
            db_write_targets: Vec::new(),
            jobs_recycle: Vec::new(),
            inhibition,
            arbitrator: cfg_arbitration.then(crate::arbitration::Arbitrator::new),
            app_busy: false,
            db_busy: false,
            pending_deploys: BTreeMap::new(),
            pending_undeploys: BTreeMap::new(),
            latest_app_cpu: 0.0,
            latest_db_cpu: 0.0,
            last_heartbeat: Vec::new(),
            probe_samples: Vec::new(),
            probe_app_nodes: Vec::new(),
            probe_db_nodes: Vec::new(),
            probe_allocated: Vec::new(),
            rolling: None,
            hot_ids: None,
        }
    }

    /// Interned metric handles, created on first use.
    pub(crate) fn hot_ids(&mut self, ctx: &mut Ctx<'_, Msg>) -> HotMetricIds {
        match self.hot_ids {
            Some(ids) => ids,
            None => {
                let ids = HotMetricIds::intern(ctx.metrics());
                self.hot_ids = Some(ids);
                ids
            }
        }
    }

    // ------------------------------------------------------------------
    // Request / job slab plumbing
    // ------------------------------------------------------------------

    pub(crate) fn request(&self, req: RequestId) -> Option<&RequestState> {
        self.inflight.get(SlabKey::from_raw(req.0))
    }

    pub(crate) fn request_mut(&mut self, req: RequestId) -> Option<&mut RequestState> {
        self.inflight.get_mut(SlabKey::from_raw(req.0))
    }

    pub(crate) fn request_live(&self, req: RequestId) -> bool {
        self.inflight.contains(SlabKey::from_raw(req.0))
    }

    pub(crate) fn remove_request(&mut self, req: RequestId) -> Option<RequestState> {
        self.inflight.remove(SlabKey::from_raw(req.0))
    }

    /// Returns a retired request's buffers to the recycling pools.
    // jade-audit: allow(unbounded-growth): recycling pool — drained by
    // on_client_think/new_request, which pop a retired buffer before
    // allocating a fresh one; residency is bounded by the number of
    // concurrently live requests.
    pub(crate) fn recycle_request(&mut self, state: RequestState) {
        let RequestState { plan, mut jobs, .. } = state;
        self.recycle_plan(plan);
        jobs.clear();
        self.jobs_recycle.push(jobs);
    }

    /// Returns a dropped plan's buffers to the recycling pools (the
    /// statement list of an interpreted plan, or the parameter/demand
    /// buffers of a compiled run).
    // jade-audit: allow(unbounded-growth): recycling pools — drained by
    // the plan-generation path (generate_plan*/on_client_think pop from
    // sql_recycle/param_recycle); residency is bounded by concurrently
    // live requests.
    pub(crate) fn recycle_plan(&mut self, plan: jade_tiers::InteractionPlan) {
        match plan.sql {
            jade_tiers::SqlProgram::Ops(mut sql) => {
                sql.clear();
                self.sql_recycle.push(sql);
            }
            jade_tiers::SqlProgram::Compiled(run) => {
                let (mut params, mut demands) = (run.params, run.demands);
                params.clear();
                demands.clear();
                self.param_recycle.push((params, demands));
            }
        }
    }

    /// The accept queue of `server`, growing the dense table on demand.
    // jade-audit: allow(hot-panic): the resize_with on the preceding
    // line guarantees idx < accept_queues.len().
    pub(crate) fn accept_queue_mut(&mut self, server: ServerId) -> &mut VecDeque<RequestId> {
        let idx = server.0 as usize;
        if idx >= self.accept_queues.len() {
            self.accept_queues.resize_with(idx + 1, VecDeque::new);
        }
        &mut self.accept_queues[idx]
    }

    /// Drops any queued requests of `server` without growing the table.
    pub(crate) fn clear_accept_queue(&mut self, server: ServerId) {
        if let Some(q) = self.accept_queues.get_mut(server.0 as usize) {
            q.clear();
        }
    }

    /// Records a daemon heartbeat from `node`, growing the dense table on
    /// demand (node ids are fixed at configuration time, so the table
    /// reaches pool size once and never reallocates again).
    // jade-audit: allow(hot-panic): the resize on the preceding line
    // guarantees slot < last_heartbeat.len().
    pub(crate) fn record_heartbeat(&mut self, node: NodeId, now: SimTime) {
        let slot = node.0 as usize;
        if slot >= self.last_heartbeat.len() {
            self.last_heartbeat.resize(slot + 1, None);
        }
        self.last_heartbeat[slot] = Some(now);
    }

    /// Cancels and clears the pending CPU timer of `node`, if any.
    pub(crate) fn cancel_cpu_timer(&mut self, ctx: &mut Ctx<'_, Msg>, node: NodeId) {
        if let Some(tok) = self
            .cpu_timers
            .get_mut(node.0 as usize)
            .and_then(Option::take)
        {
            ctx.cancel(tok);
        }
    }

    // ------------------------------------------------------------------
    // CPU job plumbing
    // ------------------------------------------------------------------

    // jade-audit: allow(unbounded-growth): job_owner is a slab keyed by
    // JobId; on_cpu_complete and abort_node_jobs remove the entry when
    // the job finishes or its node dies, so residency equals in-flight
    // CPU jobs.
    pub(crate) fn submit_job(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        node: NodeId,
        owner: JobOwner,
        demand: SimDuration,
    ) {
        let id = JobId(self.job_owner.insert(owner).raw());
        if let Some(req) = owner.request() {
            if let Some(state) = self.inflight.get_mut(SlabKey::from_raw(req.0)) {
                state.jobs.push(id);
            }
        }
        if let Ok(n) = self.legacy.cluster.node_mut(node) {
            n.cpu.submit(ctx.now(), id, demand);
        }
        self.rearm_cpu(ctx, node);
    }

    // jade-audit: allow(hot-panic): the resize on the preceding line
    // guarantees slot < cpu_timers.len().
    pub(crate) fn rearm_cpu(&mut self, ctx: &mut Ctx<'_, Msg>, node: NodeId) {
        let slot = node.0 as usize;
        if slot >= self.cpu_timers.len() {
            self.cpu_timers.resize(slot + 1, None);
        }
        if let Some(tok) = self.cpu_timers[slot].take() {
            ctx.cancel(tok);
        }
        let next = self
            .legacy
            .cluster
            .node_mut(node)
            .ok()
            .and_then(|n| n.cpu.next_completion(ctx.now()));
        if let Some(t) = next {
            let tok = ctx.send_at(t, jade_sim::Addr::ROOT, Msg::CpuComplete(node));
            self.cpu_timers[slot] = Some(tok);
        }
    }

    // ------------------------------------------------------------------
    // Initial deployment (paper §3.3: interpretation of the ADL)
    // ------------------------------------------------------------------

    /// Synchronously processes the legacy outbox until it is empty —
    /// used during bootstrap, where boot and sync delays are folded into
    /// time zero (the paper's runs start with the system already up).
    #[cold]
    fn bootstrap_drain(&mut self) {
        for _ in 0..1000 {
            let events = self.legacy.drain_outbox();
            if events.is_empty() {
                return;
            }
            for (_, e) in events {
                match e {
                    LegacyEvent::ServerBooted(id) => {
                        let _ = self.legacy.finish_boot(id);
                    }
                    LegacyEvent::ReplayBatchDone { cjdbc, backend } => {
                        let _ = self.legacy.cjdbc_replay_batch_done(cjdbc, backend);
                    }
                    LegacyEvent::BackendActivated { .. }
                    | LegacyEvent::ServerStopped(_)
                    | LegacyEvent::ServerFailed(_) => {}
                }
            }
        }
        panic!("bootstrap did not converge");
    }

    #[cold]
    fn allocate_and_install(&mut self, packages: &[&str]) -> (NodeId, SimDuration) {
        let node = self
            .legacy
            .cluster
            .allocate()
            .expect("initial deployment must fit the node pool");
        let mut latency = SimDuration::ZERO;
        for pkg in packages {
            latency += self
                .legacy
                .sis
                .install(&mut self.legacy.cluster, node, pkg)
                .expect("installation on a fresh node");
        }
        (node, latency)
    }

    #[cold]
    fn daemon_packages(&self) -> Vec<&'static str> {
        if self.cfg.jade.managed {
            vec!["jade-daemon"]
        } else {
            vec![]
        }
    }

    /// Creates a Tomcat replica (legacy process + management component)
    /// on `node`. The component is not started.
    #[cold]
    pub(crate) fn create_tomcat_replica(&mut self, node: NodeId) -> (ServerId, ComponentId) {
        self.tomcat_seq += 1;
        let name = format!("Tomcat{}", self.tomcat_seq);
        let server = self.legacy.create_tomcat(&name, node);
        let comp = self.registry.new_primitive(
            &name,
            vec![
                InterfaceDecl::server("ajp", "ajp"),
                InterfaceDecl::optional_client("jdbc-itf", "jdbc"),
            ],
            Box::new(TomcatWrapper { server }),
        );
        self.registry
            .set_attr(&mut self.legacy, comp, "server-id", server.0 as i64)
            .expect("fresh component");
        self.registry
            .set_attr(&mut self.legacy, comp, "port", 8098i64)
            .expect("fresh component");
        self.registry
            .add_child(self.app_tier, comp)
            .expect("tier composite");
        self.comp_of_server.insert(server, comp);
        // Architectural record: this Tomcat talks JDBC to the C-JDBC
        // front-end (Figure 2's tier bindings).
        if let Some((_, cj_comp)) = self.cjdbc {
            let _ = self
                .registry
                .bind(&mut self.legacy, comp, "jdbc-itf", cj_comp, "jdbc");
        }
        (server, comp)
    }

    /// Creates an Apache replica on `node` (web tier, not started). Its
    /// mod_jk `ajp-itf` is a collection interface: one Apache may balance
    /// over several Tomcats (paper Figure 2).
    #[cold]
    pub(crate) fn create_apache_replica(&mut self, node: NodeId) -> (ServerId, ComponentId) {
        self.apache_seq += 1;
        let name = format!("Apache{}", self.apache_seq);
        let server = self.legacy.create_apache(&name, node);
        let comp = self.registry.new_primitive(
            &name,
            vec![
                InterfaceDecl::server("http", "http"),
                jade_fractal::InterfaceDecl::collection_client("ajp-itf", "ajp"),
            ],
            Box::new(jade_tiers::ApacheWrapper { server }),
        );
        self.registry
            .set_attr(&mut self.legacy, comp, "server-id", server.0 as i64)
            .expect("fresh component");
        self.registry
            .set_attr(&mut self.legacy, comp, "port", 80i64)
            .expect("fresh component");
        self.registry
            .add_child(self.web_tier, comp)
            .expect("tier composite");
        self.comp_of_server.insert(server, comp);
        (server, comp)
    }

    /// Creates a MySQL replica on `node` (dump restored, not started).
    #[cold]
    pub(crate) fn create_mysql_replica(&mut self, node: NodeId) -> (ServerId, ComponentId) {
        self.mysql_seq += 1;
        let name = format!("MySQL{}", self.mysql_seq);
        let server = self.legacy.create_mysql(&name, node);
        let comp = self.registry.new_primitive(
            &name,
            vec![InterfaceDecl::server("mysql", "mysql")],
            Box::new(MysqlWrapper { server }),
        );
        self.registry
            .set_attr(&mut self.legacy, comp, "server-id", server.0 as i64)
            .expect("fresh component");
        self.registry
            .set_attr(&mut self.legacy, comp, "port", 3306i64)
            .expect("fresh component");
        self.registry
            .add_child(self.db_tier, comp)
            .expect("tier composite");
        self.comp_of_server.insert(server, comp);
        (server, comp)
    }

    /// Deploys the initial architecture synchronously (bootstrap).
    #[cold]
    pub(crate) fn deploy_initial(&mut self) {
        // The base dump every MySQL replica restores.
        let mut dump_rng = jade_sim::SimRng::seed_from_u64(self.cfg.seed ^ 0xDA7A);
        let dump = dataset_statements(self.cfg.dataset, &mut dump_rng);
        self.legacy.set_mysql_dump(rubis_schema(), &dump);

        let daemon = self.daemon_packages();

        // C-JDBC controller.
        let mut cj_pkgs = vec!["cjdbc"];
        cj_pkgs.extend(&daemon);
        let (cj_node, _) = self.allocate_and_install(&cj_pkgs);
        let cj_server =
            self.legacy
                .create_cjdbc("C-JDBC", cj_node, self.cfg.description.database.read_policy);
        let cj_comp = self.registry.new_primitive(
            "C-JDBC",
            vec![
                InterfaceDecl::server("jdbc", "jdbc"),
                InterfaceDecl::collection_client("backends", "mysql"),
            ],
            Box::new(CjdbcWrapper { server: cj_server }),
        );
        self.registry
            .set_attr(&mut self.legacy, cj_comp, "server-id", cj_server.0 as i64)
            .expect("fresh component");
        self.registry
            .add_child(self.db_tier, cj_comp)
            .expect("tier composite");
        self.comp_of_server.insert(cj_server, cj_comp);
        self.cjdbc = Some((cj_server, cj_comp));

        // PLB front-end.
        let mut plb_pkgs = vec!["plb"];
        plb_pkgs.extend(&daemon);
        let (plb_node, _) = self.allocate_and_install(&plb_pkgs);
        let plb_server = self.legacy.create_plb(
            "PLB",
            plb_node,
            self.cfg.description.application.balance_policy,
        );
        let plb_comp = self.registry.new_primitive(
            "PLB",
            vec![
                InterfaceDecl::server("http", "http"),
                InterfaceDecl::collection_client("workers", "ajp"),
            ],
            Box::new(BalancerWrapper { server: plb_server }),
        );
        self.registry
            .set_attr(&mut self.legacy, plb_comp, "server-id", plb_server.0 as i64)
            .expect("fresh component");
        self.registry
            .add_child(self.app_tier, plb_comp)
            .expect("tier composite");
        self.comp_of_server.insert(plb_server, plb_comp);
        self.plb = Some((plb_server, plb_comp));

        // Initial replicas.
        let mut tomcats = Vec::new();
        for _ in 0..self.cfg.description.application.replicas {
            let mut pkgs = vec!["tomcat"];
            pkgs.extend(&daemon);
            let (node, _) = self.allocate_and_install(&pkgs);
            tomcats.push(self.create_tomcat_replica(node));
        }
        let mut mysqls = Vec::new();
        for _ in 0..self.cfg.description.database.replicas {
            let mut pkgs = vec!["mysql"];
            pkgs.extend(&daemon);
            let (node, _) = self.allocate_and_install(&pkgs);
            mysqls.push(self.create_mysql_replica(node));
        }

        // Optional static web tier: an L4 switch in front of replicated
        // Apache servers (paper Figure 2).
        let mut apaches = Vec::new();
        if let Some(web) = self.cfg.description.web {
            let mut l4_pkgs = vec!["plb"]; // same software class
            l4_pkgs.extend(&daemon);
            let (l4_node, _) = self.allocate_and_install(&l4_pkgs);
            let l4_server = self
                .legacy
                .create_l4switch("L4-switch", l4_node, web.balance_policy);
            let l4_comp = self.registry.new_primitive(
                "L4-switch",
                vec![
                    InterfaceDecl::server("http", "http"),
                    InterfaceDecl::collection_client("workers", "http"),
                ],
                Box::new(BalancerWrapper { server: l4_server }),
            );
            self.registry
                .set_attr(&mut self.legacy, l4_comp, "server-id", l4_server.0 as i64)
                .expect("fresh component");
            self.registry
                .add_child(self.web_tier, l4_comp)
                .expect("tier composite");
            self.comp_of_server.insert(l4_server, l4_comp);
            self.l4 = Some((l4_server, l4_comp));
            for _ in 0..web.replicas {
                let mut pkgs = vec!["apache"];
                pkgs.extend(&daemon);
                let (node, _) = self.allocate_and_install(&pkgs);
                apaches.push(self.create_apache_replica(node));
            }
        }

        // Start everything (boot events folded into t=0)…
        self.registry
            .start(&mut self.legacy, cj_comp)
            .expect("start C-JDBC");
        self.registry
            .start(&mut self.legacy, plb_comp)
            .expect("start PLB");
        if let Some((_, l4_comp)) = self.l4 {
            self.registry
                .start(&mut self.legacy, l4_comp)
                .expect("start L4 switch");
        }
        for &(_, comp) in tomcats.iter().chain(mysqls.iter()).chain(apaches.iter()) {
            self.registry
                .start(&mut self.legacy, comp)
                .expect("start replica");
        }
        self.bootstrap_drain();

        // …then wire the tiers. Binding a running MySQL triggers its
        // (empty) recovery-log replay; drain again to activate.
        for &(_, comp) in &mysqls {
            self.registry
                .bind(&mut self.legacy, cj_comp, "backends", comp, "mysql")
                .expect("bind backend");
        }
        self.bootstrap_drain();
        for &(_, comp) in &tomcats {
            self.registry
                .bind(&mut self.legacy, plb_comp, "workers", comp, "ajp")
                .expect("bind worker");
        }
        // Web tier wiring: L4 → Apaches, each Apache → every Tomcat
        // (mod_jk balances across the servlet replicas).
        if let Some((_, l4_comp)) = self.l4 {
            for &(_, apache_comp) in &apaches {
                self.registry
                    .bind(&mut self.legacy, l4_comp, "workers", apache_comp, "http")
                    .expect("bind apache worker");
                for &(_, tomcat_comp) in &tomcats {
                    self.registry
                        .bind(&mut self.legacy, apache_comp, "ajp-itf", tomcat_comp, "ajp")
                        .expect("bind mod_jk worker");
                }
            }
        }
        self.bootstrap_drain();
        // Mark the composites started (children are already running, so
        // the cascade is idempotent); the architecture then introspects
        // as one started composite, as in the paper's Figure 2.
        self.registry
            .start(&mut self.legacy, self.root)
            .expect("start root composite");
        self.bootstrap_drain();
    }

    #[cold]
    fn bootstrap(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.deploy_initial();
        ctx.send_now(jade_sim::Addr::ROOT, Msg::RampTick);
        if let crate::config::ClientMode::Aggregate { tick } = self.cfg.client_mode {
            ctx.send_after_coarse(tick, jade_sim::Addr::ROOT, Msg::PoolTick);
        }
        ctx.send_after_coarse(
            self.cfg.jade.probe_period,
            jade_sim::Addr::ROOT,
            Msg::MeasureTick,
        );
        for i in 0..self.managers.len() {
            ctx.send_after_coarse(
                self.cfg.jade.probe_period,
                jade_sim::Addr::ROOT,
                Msg::SensorTick(i),
            );
        }
        if self.cfg.jade.managed && self.cfg.jade.self_repair {
            ctx.send_after_coarse(
                self.cfg.jade.probe_period,
                jade_sim::Addr::ROOT,
                Msg::DetectorTick,
            );
        }
    }

    // ------------------------------------------------------------------
    // Introspection used by experiments and tests
    // ------------------------------------------------------------------

    /// Number of running replicas of a managed tier.
    pub fn running_replicas(&self, tier: ManagedTier) -> usize {
        self.legacy.running_count_of(tier.tier())
    }

    /// Total nodes currently allocated.
    pub fn allocated_nodes(&self) -> usize {
        self.legacy.cluster.allocated().len()
    }

    /// Renders the managed architecture (including Jade itself).
    pub fn render_architecture(&self) -> String {
        self.registry.render_tree(self.root)
    }
}

impl App for J2eeApp {
    type Msg = Msg;

    #[jade_hot::jade_hot]
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, _dst: jade_sim::Addr, msg: Msg) {
        match msg {
            Msg::Bootstrap => self.bootstrap(ctx),
            Msg::RampTick => self.on_ramp_tick(ctx),
            Msg::MeasureTick => self.on_measure_tick(ctx),
            Msg::ClientThink(c) => self.on_client_think(ctx, c),
            Msg::PoolTick => self.on_pool_tick(ctx),
            Msg::PoolDispatch {
                bucket,
                interaction,
            } => self.on_pool_dispatch(ctx, bucket, interaction),
            Msg::ApacheAccept { req, apache } => self.on_apache_accept(ctx, req, apache),
            Msg::TomcatAccept { req, tomcat } => self.on_tomcat_accept(ctx, req, tomcat),
            Msg::DbDispatch { req } => self.on_db_dispatch(ctx, req),
            Msg::CpuComplete(node) => self.on_cpu_complete(ctx, node),
            Msg::ResponseDelivered { req } => self.on_response(ctx, req),
            Msg::ClientAbandon { req } => self.on_client_abandon(ctx, req),
            Msg::Legacy(e) => self.on_legacy_event(ctx, e),
            Msg::SensorTick(i) => self.on_sensor_tick(ctx, i),
            Msg::DetectorTick => self.on_detector_tick(ctx),
            Msg::DeployStep { server } => self.on_deploy_step(ctx, server),
            Msg::UndeployStop { server } => self.on_undeploy_stop(ctx, server),
            Msg::RollingRestart(tier) => self.start_rolling_restart(ctx, tier),
            Msg::RollingNext => self.on_rolling_next(ctx),
            Msg::RollingStop { server } => self.on_rolling_stop(ctx, server),
            Msg::CrashNode(node) => self.on_crash_node(ctx, node),
            Msg::FailServer(server) => {
                let _ = self.legacy.fail_server(server);
                self.flush_legacy_outbox(ctx);
            }
        }
    }
}
