//! Messages and per-request state of the simulated J2EE system.

use jade_cluster::NodeId;
use jade_sim::{EventToken, JobId, SimTime};
use jade_tiers::{InteractionPlan, LegacyEvent, RequestId, ServerId};

/// Events routed through the discrete-event engine.
#[derive(Debug)]
pub enum Msg {
    /// Initial synchronous deployment + scheduling of periodic ticks.
    Bootstrap,
    /// Adjust the emulated-client pool to the ramp.
    RampTick,
    /// Sample node CPUs / memory, record series, charge daemon overhead.
    MeasureTick,
    /// A client finished thinking and issues its next interaction.
    ClientThink(u32),
    /// Aggregate-mode issuance tick: draw which idle sessions finish
    /// thinking this period and schedule their dispatches.
    PoolTick,
    /// An aggregate-mode session's dispatch offset elapsed: materialize
    /// the request and route it into the system.
    PoolDispatch {
        /// Idle bucket the session returns to on completion — its new
        /// navigation state under Markov navigation, the fresh bucket
        /// under the stateless i.i.d. mix.
        bucket: u32,
        /// Index of the issued interaction in `INTERACTIONS`.
        interaction: u32,
    },
    /// An HTTP request reached an Apache replica (web-tier topologies).
    ApacheAccept {
        /// The request.
        req: RequestId,
        /// The chosen web server.
        apache: ServerId,
    },
    /// An HTTP request reached a Tomcat replica.
    TomcatAccept {
        /// The request.
        req: RequestId,
        /// The chosen replica.
        tomcat: ServerId,
    },
    /// A SQL operation reaches the C-JDBC controller (after LAN delay).
    DbDispatch {
        /// The request whose next SQL op is dispatched.
        req: RequestId,
    },
    /// A node's processor-sharing CPU reached its next completion time.
    CpuComplete(NodeId),
    /// The response reached the client.
    ResponseDelivered {
        /// The completed request.
        req: RequestId,
    },
    /// The client's patience expired (configured abandonment timeout).
    ClientAbandon {
        /// The request being abandoned if still in flight.
        req: RequestId,
    },
    /// A deferred legacy-layer event.
    Legacy(LegacyEvent),
    /// One control loop's sensor/reactor tick (index into the managers).
    SensorTick(usize),
    /// Self-recovery failure-detector tick.
    DetectorTick,
    /// Continue a staged replica deployment (after installation latency).
    DeployStep {
        /// Server being deployed.
        server: ServerId,
    },
    /// Stop a drained replica (scale-down, after the grace period).
    UndeployStop {
        /// Server being retired.
        server: ServerId,
    },
    /// Administration request: restart every replica of a tier, one at a
    /// time, without interrupting the service (rolling restart).
    RollingRestart(ManagedTier),
    /// Continue the rolling restart with the next replica.
    RollingNext,
    /// Stop-and-restart the drained replica of the rolling restart.
    RollingStop {
        /// Replica being bounced.
        server: ServerId,
    },
    /// Failure injection: crash a node.
    CrashNode(NodeId),
    /// Failure injection: crash a single server process (its node
    /// survives, so the local daemon reports the failure immediately).
    FailServer(ServerId),
}

/// What a CPU job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOwner {
    /// Apache serving a static document or forwarding a dynamic request.
    ApacheServe(RequestId),
    /// Servlet execution before the first query.
    ServletPre(RequestId),
    /// Page generation after the last query.
    ServletPost(RequestId),
    /// A read executing on a database backend.
    DbRead {
        /// Owning request.
        req: RequestId,
        /// C-JDBC controller.
        cjdbc: ServerId,
        /// Executing backend.
        backend: ServerId,
    },
    /// One broadcast write executing on a database backend.
    DbWrite {
        /// Owning request.
        req: RequestId,
        /// C-JDBC controller.
        cjdbc: ServerId,
        /// Executing backend.
        backend: ServerId,
    },
    /// Management-daemon overhead (intrusivity model).
    Daemon,
    /// Request-routing work on a load-balancer node (PLB / C-JDBC). Fire
    /// and forget: it burns CPU concurrently with the routed request.
    Routing,
}

impl JobOwner {
    /// The request the job belongs to, when it belongs to one.
    pub fn request(self) -> Option<RequestId> {
        match self {
            JobOwner::ApacheServe(req) | JobOwner::ServletPre(req) | JobOwner::ServletPost(req) => {
                Some(req)
            }
            JobOwner::DbRead { req, .. } | JobOwner::DbWrite { req, .. } => Some(req),
            JobOwner::Daemon | JobOwner::Routing => None,
        }
    }
}

/// Progress of one in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// Being served (or forwarded) by the web tier.
    WebServe,
    /// Waiting in a Tomcat accept queue.
    Queued,
    /// Executing the pre-query servlet work.
    ServletPre,
    /// Executing SQL (index tracked separately).
    Sql,
    /// Executing the post-query page generation.
    ServletPost,
    /// Response in flight back to the client.
    Responding,
}

/// Per-request bookkeeping, stored in the in-flight slab.
#[derive(Debug)]
pub struct RequestState {
    /// Issuing client.
    pub client: u32,
    /// Creation-order stamp, monotonic across the run. Slab slots are
    /// recycled, so bulk-failure paths sort victims by this to preserve
    /// the old map's creation-order iteration.
    pub seq: u64,
    /// Issue time (latency reference).
    pub started: SimTime,
    /// The interaction's work plan.
    pub plan: InteractionPlan,
    /// Web server handling the request (web-tier topologies).
    pub apache: Option<ServerId>,
    /// Servlet replica processing the request (dynamic requests).
    pub tomcat: Option<ServerId>,
    /// Current phase.
    pub phase: RequestPhase,
    /// Next SQL op index.
    pub sql_idx: usize,
    /// Outstanding broadcast-write jobs.
    pub pending_db: usize,
    /// Every CPU job submitted for this request, in submission order.
    /// Generational `JobId`s go stale when a job completes, so failure
    /// paths simply skip ids whose slab slot no longer matches.
    pub jobs: Vec<JobId>,
    /// The pending `ClientAbandon` patience timer, cancelled on
    /// completion or failure.
    pub abandon: Option<EventToken>,
}

/// A staged deployment in progress (scale-up workflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployPhase {
    /// Software being installed on the node.
    Installing,
    /// Server process booting.
    Booting,
    /// Database backend replaying the recovery log.
    Syncing,
}

/// Tier targeted by a reconfiguration (mirrors `jade_tiers::Tier` for the
/// two managed tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagedTier {
    /// Tomcat tier.
    Application,
    /// MySQL tier.
    Database,
}

impl ManagedTier {
    /// The legacy-layer tier.
    pub fn tier(self) -> jade_tiers::Tier {
        match self {
            ManagedTier::Application => jade_tiers::Tier::Application,
            ManagedTier::Database => jade_tiers::Tier::Database,
        }
    }

    /// Software package of the tier's server.
    pub fn package(self) -> &'static str {
        match self {
            ManagedTier::Application => "tomcat",
            ManagedTier::Database => "mysql",
        }
    }

    /// Metric-series name of the replica count (Figure 5).
    pub fn replicas_series(self) -> &'static str {
        match self {
            ManagedTier::Application => "replicas.app",
            ManagedTier::Database => "replicas.db",
        }
    }

    /// Metric-series name of the tier's spatial-average CPU.
    pub fn cpu_series(self) -> &'static str {
        match self {
            ManagedTier::Application => "cpu.app",
            ManagedTier::Database => "cpu.db",
        }
    }

    /// Metric-series name of the smoothed CPU (sensor output).
    pub fn smoothed_series(self) -> &'static str {
        match self {
            ManagedTier::Application => "cpu.app.smoothed",
            ManagedTier::Database => "cpu.db.smoothed",
        }
    }
}

/// Info tracked for a replica whose deployment is staged.
#[derive(Debug, Clone, Copy)]
pub struct PendingDeploy {
    /// Tier the replica joins.
    pub tier: ManagedTier,
    /// Current workflow phase.
    pub phase: DeployPhase,
    /// Management component of the replica.
    pub comp: jade_fractal::ComponentId,
}
