//! Jade's run-time management: probes, control loops, reconfiguration
//! workflows (the actuators of paper §4.1) and failure handling.

use super::msg::{DeployPhase, JobOwner, ManagedTier, Msg, PendingDeploy};
use super::J2eeApp;
use crate::control::Decision;
use jade_cluster::NodeId;
use jade_sim::{Addr, Ctx, SimDuration, SlabKey};
use jade_tiers::{LegacyEvent, RequestId, ServerId, Tier};

/// Extra installation latency for restoring the database dump onto a new
/// MySQL replica.
const DB_DUMP_RESTORE: SimDuration = SimDuration::from_secs(5);

impl J2eeApp {
    fn tier_busy(&self, tier: ManagedTier) -> bool {
        match tier {
            ManagedTier::Application => self.app_busy,
            ManagedTier::Database => self.db_busy,
        }
    }

    fn set_tier_busy(&mut self, tier: ManagedTier, busy: bool) {
        match tier {
            ManagedTier::Application => self.app_busy = busy,
            ManagedTier::Database => self.db_busy = busy,
        }
        // A finished reconfiguration frees the arbitration slot.
        if !busy {
            if let Some(arb) = self.arbitrator.as_mut() {
                arb.complete();
            }
        }
    }

    /// Components of the Apache replicas (web-tier topologies).
    pub(crate) fn apache_components(&self) -> Vec<jade_fractal::ComponentId> {
        let l4_comp = self.l4.map(|(_, c)| c);
        self.registry
            .children(self.web_tier)
            .into_iter()
            .filter(|&c| Some(c) != l4_comp)
            .collect()
    }

    pub(crate) fn log_reconfig(&mut self, ctx: &mut Ctx<'_, Msg>, text: String) {
        ctx.trace(jade_sim::TraceLevel::Info, "manager", || text.clone());
        self.reconfig_log.push((ctx.now(), text));
        ctx.metrics().incr("reconfigurations", 1);
    }

    fn record_replica_series(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let ids = self.hot_ids(ctx);
        let app = self.running_replicas(ManagedTier::Application) as f64;
        let db = self.running_replicas(ManagedTier::Database) as f64;
        let now = ctx.now();
        ctx.metrics()
            .record_series_batch(now, &[(ids.replicas_app, app), (ids.replicas_db, db)]);
    }

    // ------------------------------------------------------------------
    // Probes (MeasureTick): the harness-level measurement that both the
    // figures and Jade's sensors read.
    // ------------------------------------------------------------------

    // jade-audit: allow(hot-panic): samples[] is a dense per-node array
    // resized to the cluster's node count at the top of the tick, and
    // tier node lists only hold NodeIds minted by the same cluster.
    pub(crate) fn on_measure_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        // Sample every node once into a dense per-node array
        // (`samples[i]` = utilization of `NodeId(i)`); aggregate per
        // managed tier. All buffers are recycled fields, swapped out for
        // the duration of the tick (the heartbeat loop below needs
        // `&mut self`), so the steady-state tick allocates nothing. Tier
        // node lists stay sorted by id, so every spatial sum visits the
        // same samples in the same order as the map-based probe did.
        let mut samples = std::mem::take(&mut self.probe_samples);
        let mut app_nodes = std::mem::take(&mut self.probe_app_nodes);
        let mut db_nodes = std::mem::take(&mut self.probe_db_nodes);
        let mut allocated = std::mem::take(&mut self.probe_allocated);
        self.legacy
            .nodes_of_tier_into(Tier::Application, &mut app_nodes);
        self.legacy
            .nodes_of_tier_into(Tier::Database, &mut db_nodes);
        self.legacy.cluster.sample_cpus_into(now, &mut samples);
        let avg = |nodes: &[NodeId]| -> f64 {
            if nodes.is_empty() {
                0.0
            } else {
                nodes.iter().map(|&n| samples[n.0 as usize]).sum::<f64>() / nodes.len() as f64
            }
        };
        self.latest_app_cpu = avg(&app_nodes);
        self.latest_db_cpu = avg(&db_nodes);

        // Memory and node-allocation series (Table 1, Figure 5 context).
        self.legacy.cluster.fill_allocated(&mut allocated);
        let mem_avg = if allocated.is_empty() {
            0.0
        } else {
            allocated
                .iter()
                .filter_map(|&n| self.legacy.cluster.node(n).ok())
                .map(|n| n.memory_utilization())
                .sum::<f64>()
                / allocated.len() as f64
        };
        let cpu_all_avg = if allocated.is_empty() {
            0.0
        } else {
            allocated
                .iter()
                .map(|&n| samples[n.0 as usize])
                .sum::<f64>()
                / allocated.len() as f64
        };
        // One batched append per probe tick: every sample shares `now`.
        let ids = self.hot_ids(ctx);
        ctx.metrics().record_series_batch(
            now,
            &[
                (ids.cpu_app, self.latest_app_cpu),
                (ids.cpu_db, self.latest_db_cpu),
                (ids.mem_avg, mem_avg),
                (ids.cpu_all, cpu_all_avg),
                (ids.nodes_allocated, allocated.len() as f64),
            ],
        );
        self.record_replica_series(ctx);

        // Intrusivity: the management daemon consumes a little CPU on
        // every managed node, every probe period (Table 1) — and its
        // report doubles as the node's heartbeat for failure detection.
        if self.cfg.jade.managed {
            let demand = self.cfg.jade.daemon_demand;
            for &node in &allocated {
                let up = self
                    .legacy
                    .cluster
                    .node(node)
                    .map(|n| n.is_up())
                    .unwrap_or(false);
                if up {
                    self.record_heartbeat(node, now);
                    self.submit_job(ctx, node, JobOwner::Daemon, demand);
                }
            }
        }
        // Return the scratch buffers for the next tick.
        self.probe_samples = samples;
        self.probe_app_nodes = app_nodes;
        self.probe_db_nodes = db_nodes;
        self.probe_allocated = allocated;
        // Arbitration pump: execute at most one queued reconfiguration
        // when the system is quiescent.
        self.pump_arbitrator(ctx);
        ctx.send_after_coarse(self.cfg.jade.probe_period, Addr::ROOT, Msg::MeasureTick);
    }

    /// Executes the next arbitrated reconfiguration when permitted.
    fn pump_arbitrator(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        if self.app_busy || self.db_busy || !self.inhibition.permits(now) {
            return;
        }
        let Some(arb) = self.arbitrator.as_mut() else {
            return;
        };
        let Some(req) = arb.next() else { return };
        use crate::arbitration::Action;
        match req.action {
            Action::ScaleUp(tier) => {
                self.note_adaptive(tier, Decision::ScaleUp, now);
                self.scale_up(ctx, tier);
            }
            Action::ScaleDown(tier) => {
                self.note_adaptive(tier, Decision::ScaleDown, now);
                self.scale_down(ctx, tier);
            }
            Action::Repair(server) => self.repair_server(ctx, server),
        }
        // The action may have been a stale no-op (nothing became busy):
        // free the slot immediately.
        if !self.app_busy && !self.db_busy {
            if let Some(arb) = self.arbitrator.as_mut() {
                arb.complete();
            }
        }
    }

    fn note_adaptive(&mut self, tier: ManagedTier, d: Decision, now: jade_sim::SimTime) {
        if let Some(mgr) = self.managers.iter_mut().find(|m| m.tier == tier) {
            if let Some(a) = mgr.adaptive.as_mut() {
                a.note_executed(d, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Control loops (SensorTick)
    // ------------------------------------------------------------------

    // jade-audit: allow(hot-panic): idx is carried by the SensorTick
    // message that this manager armed for itself at deploy time, so it
    // always names a live slot of the fixed two-entry managers array.
    pub(crate) fn on_sensor_tick(&mut self, ctx: &mut Ctx<'_, Msg>, idx: usize) {
        let now = ctx.now();
        let period = self.cfg.jade.probe_period;
        let tier = self.managers[idx].tier;
        let spatial = if self.cfg.jade.latency_driver {
            // Paper §4.2: "a sensor specific to optimization may provide
            // an estimator of the response-time to client requests."
            // Normalized so the usual thresholds apply.
            (self.stats.recent_mean_latency_ms(now) / self.cfg.jade.latency_saturation_ms)
                .clamp(0.0, 1.0)
        } else {
            match tier {
                ManagedTier::Application => self.latest_app_cpu,
                ManagedTier::Database => self.latest_db_cpu,
            }
        };
        let smoothed = {
            use crate::control::Sensor as _;
            self.managers[idx].sensor.observe(now, spatial)
        };
        if let Some(v) = smoothed {
            ctx.metrics().record_series(tier.smoothed_series(), now, v);
        }
        if self.cfg.jade.managed {
            if let Some(v) = smoothed {
                let replicas = self.running_replicas(tier);
                let decision = match self.managers[idx].adaptive.as_ref() {
                    Some(a) => a.decide(v, replicas),
                    None => self.managers[idx].reactor.decide(v, replicas),
                };
                if decision != Decision::Stay {
                    if let Some(arb) = self.arbitrator.as_mut() {
                        // Arbitration mode: submit; the pump executes
                        // under the global serialization rules.
                        let action = match decision {
                            Decision::ScaleUp => crate::arbitration::Action::ScaleUp(tier),
                            Decision::ScaleDown => crate::arbitration::Action::ScaleDown(tier),
                            Decision::Stay => unreachable!(),
                        };
                        let _ = arb.submit(crate::arbitration::Request {
                            source: crate::arbitration::Source::SelfOptimization,
                            action,
                            submitted: now,
                        });
                    } else if self.inhibition.permits(now) && !self.tier_busy(tier) {
                        if let Some(a) = self.managers[idx].adaptive.as_mut() {
                            a.note_executed(decision, now);
                        }
                        match decision {
                            Decision::ScaleUp => self.scale_up(ctx, tier),
                            Decision::ScaleDown => self.scale_down(ctx, tier),
                            Decision::Stay => unreachable!(),
                        }
                    }
                }
            }
        }
        ctx.send_after_coarse(period, Addr::ROOT, Msg::SensorTick(idx));
    }

    // ------------------------------------------------------------------
    // Actuators: resize workflows (paper §4.1's "main operations
    // performed by the reactor")
    // ------------------------------------------------------------------

    /// Starts deploying one more replica: allocate a free node, install
    /// the required software, then (after the installation latency) start
    /// the server and wire it into the load balancer.
    #[cold]
    pub(crate) fn scale_up(&mut self, ctx: &mut Ctx<'_, Msg>, tier: ManagedTier) {
        // Guard against stale (e.g. arbitrated) requests.
        if let Some(mgr) = self.managers.iter().find(|m| m.tier == tier) {
            if self.running_replicas(tier) >= mgr.reactor.max_replicas {
                return;
            }
        }
        let Ok(node) = self.legacy.cluster.allocate() else {
            ctx.metrics().incr("scaleup.blocked", 1);
            return;
        };
        let mut latency = SimDuration::ZERO;
        let mut packages = vec![tier.package()];
        if self.cfg.jade.managed {
            packages.push("jade-daemon");
        }
        for pkg in packages {
            match self.legacy.sis.install(&mut self.legacy.cluster, node, pkg) {
                Ok(l) => latency += l,
                Err(e) => {
                    // Roll back the allocation; the reactor will retry.
                    let _ = self.legacy.cluster.release(node);
                    self.log_reconfig(ctx, format!("scale-up {tier:?} failed: {e}"));
                    return;
                }
            }
        }
        if tier == ManagedTier::Database {
            latency += DB_DUMP_RESTORE;
        }
        let (server, comp) = match tier {
            ManagedTier::Application => self.create_tomcat_replica(node),
            ManagedTier::Database => self.create_mysql_replica(node),
        };
        self.pending_deploys.insert(
            server,
            PendingDeploy {
                tier,
                phase: DeployPhase::Installing,
                comp,
            },
        );
        self.set_tier_busy(tier, true);
        self.inhibition.note_reconfiguration(ctx.now());
        let name = self.registry.name(comp).unwrap_or_default();
        self.log_reconfig(
            ctx,
            format!("scale-up {tier:?}: deploying {name} on node {}", node.0 + 1),
        );
        ctx.send_after(latency, Addr::ROOT, Msg::DeployStep { server });
    }

    /// Installation finished: start the replica (boot latency follows).
    #[cold]
    pub(crate) fn on_deploy_step(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(pending) = self.pending_deploys.get_mut(&server) else {
            return;
        };
        debug_assert_eq!(pending.phase, DeployPhase::Installing);
        pending.phase = DeployPhase::Booting;
        let comp = pending.comp;
        if self.registry.start(&mut self.legacy, comp).is_err() {
            // Node died during installation; abandon the deployment.
            let tier = self.pending_deploys.remove(&server).expect("checked").tier;
            self.set_tier_busy(tier, false);
        }
        self.flush_legacy_outbox(ctx);
    }

    /// Removes the most recently added replica of a tier: unbind it from
    /// the load balancer, let in-flight work drain, then stop it and
    /// release the node.
    #[cold]
    pub(crate) fn scale_down(&mut self, ctx: &mut Ctx<'_, Msg>, tier: ManagedTier) {
        let mut running = self.legacy.running_servers_of(tier.tier());
        running.sort_unstable();
        // Guard against stale (e.g. arbitrated) requests.
        if let Some(mgr) = self.managers.iter().find(|m| m.tier == tier) {
            if running.len() <= mgr.reactor.min_replicas {
                return;
            }
        }
        let Some(&victim) = running.last() else {
            return;
        };
        let Some(&victim_comp) = self.comp_of_server.get(&victim) else {
            return;
        };
        let lb_comp = match tier {
            ManagedTier::Application => self.plb.map(|(_, c)| c),
            ManagedTier::Database => self.cjdbc.map(|(_, c)| c),
        };
        let Some(lb_comp) = lb_comp else { return };
        let itf = match tier {
            ManagedTier::Application => "workers",
            ManagedTier::Database => "backends",
        };
        if self
            .registry
            .unbind(&mut self.legacy, lb_comp, itf, Some(victim_comp))
            .is_err()
        {
            return;
        }
        // Web topologies: retire the Tomcat from every Apache's rotation.
        if tier == ManagedTier::Application {
            for apache_comp in self.apache_components() {
                let _ = self.registry.unbind(
                    &mut self.legacy,
                    apache_comp,
                    "ajp-itf",
                    Some(victim_comp),
                );
            }
        }
        self.pending_undeploys.insert(victim, tier);
        self.set_tier_busy(tier, true);
        self.inhibition.note_reconfiguration(ctx.now());
        let name = self.registry.name(victim_comp).unwrap_or_default();
        self.log_reconfig(ctx, format!("scale-down {tier:?}: retiring {name}"));
        ctx.send_after(
            self.cfg.drain_grace,
            Addr::ROOT,
            Msg::UndeployStop { server: victim },
        );
        self.flush_legacy_outbox(ctx);
    }

    /// Drain grace elapsed: stop the retired replica, destroy its
    /// component and release its node.
    #[cold]
    pub(crate) fn on_undeploy_stop(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(tier) = self.pending_undeploys.remove(&server) else {
            return;
        };
        let Some(&comp) = self.comp_of_server.get(&server) else {
            return;
        };
        let node = self
            .legacy
            .server(server)
            .map(|s| s.process().node)
            .expect("server still exists");
        let _ = self.registry.stop(&mut self.legacy, comp);
        self.flush_legacy_outbox(ctx);
        // Abort whatever is still running on that node and fail the
        // affected requests.
        self.abort_node_jobs(ctx, node);
        // Remove the component from the architecture.
        let tier_comp = match tier {
            ManagedTier::Application => self.app_tier,
            ManagedTier::Database => self.db_tier,
        };
        // A Tomcat replica holds a client binding to C-JDBC; drop it.
        if tier == ManagedTier::Application {
            let _ = self
                .registry
                .unbind(&mut self.legacy, comp, "jdbc-itf", None);
        }
        let _ = self.registry.remove_child(tier_comp, comp);
        let _ = self.registry.remove(comp);
        self.comp_of_server.remove(&server);
        // A destroyed database replica's trace is dropped for good (the
        // unbind only disabled it, preserving the checkpoint for re-use).
        if tier == ManagedTier::Database {
            if let Some((cj_server, _)) = self.cjdbc {
                let _ = self.legacy.cjdbc_unregister_backend(cj_server, server);
            }
        }
        let _ = self.legacy.remove_server(server);
        // Release the machine back to the pool ("release the nodes hosting
        // these replicas if no longer used", §4.1).
        let _ = self
            .legacy
            .sis
            .uninstall(&mut self.legacy.cluster, node, tier.package());
        let _ = self
            .legacy
            .sis
            .uninstall(&mut self.legacy.cluster, node, "jade-daemon");
        let _ = self.legacy.cluster.release(node);
        self.set_tier_busy(tier, false);
        self.record_replica_series(ctx);
        self.log_reconfig(ctx, format!("released node {}", node.0 + 1));
    }

    // ------------------------------------------------------------------
    // Legacy events
    // ------------------------------------------------------------------

    /// Schedules the legacy layer's deferred events into the engine.
    pub(crate) fn flush_legacy_outbox(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for (delay, e) in self.legacy.drain_outbox() {
            ctx.send_after(delay, Addr::ROOT, Msg::Legacy(e));
        }
    }

    #[cold]
    pub(crate) fn on_legacy_event(&mut self, ctx: &mut Ctx<'_, Msg>, e: LegacyEvent) {
        ctx.trace(jade_sim::TraceLevel::Debug, "legacy", || format!("{e:?}"));
        match e {
            LegacyEvent::ServerBooted(server) => {
                let became_running = self.legacy.finish_boot(server).unwrap_or(false);
                if !became_running {
                    return;
                }
                // A replica bounced by a rolling restart re-enters here.
                if self.rolling.as_ref().and_then(|r| r.current) == Some(server) {
                    self.on_rolling_booted(ctx, server);
                    return;
                }
                if let Some(pending) = self.pending_deploys.get_mut(&server) {
                    let comp = pending.comp;
                    match pending.tier {
                        ManagedTier::Application => {
                            self.pending_deploys.remove(&server);
                            if let Some((_, plb_comp)) = self.plb {
                                let _ = self.registry.bind(
                                    &mut self.legacy,
                                    plb_comp,
                                    "workers",
                                    comp,
                                    "ajp",
                                );
                            }
                            // Web topologies: the new Tomcat also joins
                            // every Apache's mod_jk rotation.
                            for apache_comp in self.apache_components() {
                                let _ = self.registry.bind(
                                    &mut self.legacy,
                                    apache_comp,
                                    "ajp-itf",
                                    comp,
                                    "ajp",
                                );
                            }
                            self.set_tier_busy(ManagedTier::Application, false);
                            self.record_replica_series(ctx);
                            self.log_reconfig(
                                ctx,
                                format!("replica {server:?} joined the application tier"),
                            );
                        }
                        ManagedTier::Database => {
                            pending.phase = DeployPhase::Syncing;
                            if let Some((_, cj_comp)) = self.cjdbc {
                                // Binding a running backend triggers
                                // recovery-log replay (state
                                // reconciliation, §4.1).
                                let _ = self.registry.bind(
                                    &mut self.legacy,
                                    cj_comp,
                                    "backends",
                                    comp,
                                    "mysql",
                                );
                            }
                        }
                    }
                }
                self.flush_legacy_outbox(ctx);
            }
            LegacyEvent::ReplayBatchDone { cjdbc, backend } => {
                let _ = self.legacy.cjdbc_replay_batch_done(cjdbc, backend);
                self.flush_legacy_outbox(ctx);
            }
            LegacyEvent::BackendActivated { backend, .. } => {
                if self.rolling.as_ref().and_then(|r| r.current) == Some(backend) {
                    self.finish_rolling_step(ctx, backend);
                    return;
                }
                if let Some(p) = self.pending_deploys.remove(&backend) {
                    debug_assert_eq!(p.tier, ManagedTier::Database);
                    self.set_tier_busy(ManagedTier::Database, false);
                    self.record_replica_series(ctx);
                    self.log_reconfig(
                        ctx,
                        format!("backend {backend:?} synchronized and activated"),
                    );
                }
            }
            LegacyEvent::ServerStopped(server) => {
                self.fail_requests_on_server(ctx, server);
            }
            LegacyEvent::ServerFailed(server) => {
                // Keep the management layer's view consistent.
                if let Some(&comp) = self.comp_of_server.get(&server) {
                    let _ = self.registry.mark_failed(comp);
                }
                // A failed database backend drops out of the C-JDBC
                // broadcast set with an untrusted checkpoint.
                if let Some((cj_server, _)) = self.cjdbc {
                    let _ = self
                        .legacy
                        .cjdbc_mut(cj_server)
                        .and_then(|c| c.fail_backend(server).map_err(Into::into));
                }
                self.fail_requests_on_server(ctx, server);
            }
        }
    }

    /// Fails every in-flight request processed by `server` (queued,
    /// executing, or mid-SQL).
    #[cold]
    pub(crate) fn fail_requests_on_server(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        // Slab iteration is slot order; sort by the creation-order stamp
        // so victims fail oldest-first like the old ordered-map scan.
        let mut victims: Vec<(u64, RequestId)> = self
            .inflight
            .iter()
            .filter(|(_, s)| s.tomcat == Some(server) || s.apache == Some(server))
            .map(|(k, s)| (s.seq, RequestId(k.raw())))
            .collect();
        victims.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, req) in victims {
            self.fail_request(ctx, req);
        }
        self.clear_accept_queue(server);
    }

    /// Aborts all CPU jobs on a node, failing the requests they belonged
    /// to.
    #[cold]
    pub(crate) fn abort_node_jobs(&mut self, ctx: &mut Ctx<'_, Msg>, node: NodeId) {
        let aborted = match self.legacy.cluster.node_mut(node) {
            Ok(n) => n.cpu.abort_all(ctx.now()),
            Err(_) => Vec::new(),
        };
        self.cancel_cpu_timer(ctx, node);
        for job in aborted {
            if let Some(owner) = self.job_owner.remove(SlabKey::from_raw(job.0)) {
                match owner {
                    JobOwner::ApacheServe(req)
                    | JobOwner::ServletPre(req)
                    | JobOwner::ServletPost(req)
                    | JobOwner::DbRead { req, .. }
                    | JobOwner::DbWrite { req, .. } => self.fail_request(ctx, req),
                    JobOwner::Daemon | JobOwner::Routing => {}
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure injection + self-recovery
    // ------------------------------------------------------------------

    /// Crashes a node: every hosted server fails, every job aborts.
    #[cold]
    pub(crate) fn on_crash_node(&mut self, ctx: &mut Ctx<'_, Msg>, node: NodeId) {
        let aborted = self.legacy.crash_node(node, ctx.now());
        self.cancel_cpu_timer(ctx, node);
        for job in aborted {
            if let Some(owner) = self.job_owner.remove(SlabKey::from_raw(job.0)) {
                match owner {
                    JobOwner::ApacheServe(req)
                    | JobOwner::ServletPre(req)
                    | JobOwner::ServletPost(req)
                    | JobOwner::DbRead { req, .. }
                    | JobOwner::DbWrite { req, .. } => self.fail_request(ctx, req),
                    JobOwner::Daemon | JobOwner::Routing => {}
                }
            }
        }
        self.log_reconfig(ctx, format!("node {} crashed", node.0 + 1));
        self.flush_legacy_outbox(ctx);
    }

    /// The self-recovery manager's detector: spot failed replicas and
    /// repair the architecture (paper §3.4's self-recovery loop; the
    /// repair algorithm follows reference \[4\]: remove the failed element
    /// and redeploy an equivalent one on a fresh node).
    ///
    /// Detection is heartbeat-based, not omniscient: a *process* failure
    /// on a live node is reported by the node's local daemon within one
    /// probe period, but a *node* failure is only suspected once the
    /// node's heartbeat has been missing for `failure_timeout`.
    // jade-audit: allow(hot-alloc): the failed-server snapshot is
    // collected once per detector period (seconds of simulated time) and
    // is usually empty; it decouples detection from the repairs that
    // mutate the server set while iterating.
    pub(crate) fn on_detector_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let timeout = self.cfg.jade.failure_timeout;
        let failed: Vec<ServerId> = self
            .legacy
            .server_ids()
            .into_iter()
            .filter(|&s| {
                let Ok(sv) = self.legacy.server(s) else {
                    return false;
                };
                if sv.process().state != jade_tiers::ServerState::Failed {
                    return false;
                }
                let node = sv.process().node;
                let node_up = self
                    .legacy
                    .cluster
                    .node(node)
                    .map(|n| n.is_up())
                    .unwrap_or(false);
                if node_up {
                    true // local daemon saw the process die
                } else {
                    // Dead node: suspect only after the heartbeat gap.
                    self.last_heartbeat
                        .get(node.0 as usize)
                        .copied()
                        .flatten()
                        .map(|hb| now.since(hb) >= timeout)
                        .unwrap_or(true)
                }
            })
            .collect();
        for server in failed {
            if let Some(arb) = self.arbitrator.as_mut() {
                // Submit to the arbitrator (repairs outrank optimization;
                // re-submissions on later ticks collapse as duplicates).
                let now = ctx.now();
                let _ = arb.submit(crate::arbitration::Request {
                    source: crate::arbitration::Source::SelfRecovery,
                    action: crate::arbitration::Action::Repair(server),
                    submitted: now,
                });
            } else {
                self.repair_server(ctx, server);
            }
        }
        ctx.send_after_coarse(self.cfg.jade.probe_period, Addr::ROOT, Msg::DetectorTick);
    }

    /// Repairs one failed replica: detach it from its balancer, destroy
    /// it, release its (crashed) node and deploy a replacement.
    #[cold]
    fn repair_server(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(&comp) = self.comp_of_server.get(&server) else {
            return; // not a managed replica (or already repaired)
        };
        let tier = match self.legacy.server(server).map(|s| s.process().tier) {
            Ok(Tier::Application) => ManagedTier::Application,
            Ok(Tier::Database) => ManagedTier::Database,
            Ok(Tier::Balancer) => {
                self.repair_balancer(ctx, server);
                return;
            }
            _ => return, // web-tier failures are outside this manager
        };
        let node = self
            .legacy
            .server(server)
            .map(|s| s.process().node)
            .expect("failed server exists");
        self.log_reconfig(
            ctx,
            format!(
                "self-recovery: repairing {} (tier {tier:?})",
                self.registry.name(comp).unwrap_or_default()
            ),
        );
        // Detach from the balancer.
        let lb = match tier {
            ManagedTier::Application => self.plb.map(|(_, c)| ("workers", c)),
            ManagedTier::Database => self.cjdbc.map(|(_, c)| ("backends", c)),
        };
        if let Some((itf, lb_comp)) = lb {
            let _ = self
                .registry
                .unbind(&mut self.legacy, lb_comp, itf, Some(comp));
        }
        if tier == ManagedTier::Application {
            let _ = self
                .registry
                .unbind(&mut self.legacy, comp, "jdbc-itf", None);
            for apache_comp in self.apache_components() {
                let _ = self
                    .registry
                    .unbind(&mut self.legacy, apache_comp, "ajp-itf", Some(comp));
            }
            self.clear_accept_queue(server);
        }
        // Destroy the broken replica.
        let _ = self.registry.stop(&mut self.legacy, comp);
        let tier_comp = match tier {
            ManagedTier::Application => self.app_tier,
            ManagedTier::Database => self.db_tier,
        };
        let _ = self.registry.remove_child(tier_comp, comp);
        let _ = self.registry.remove(comp);
        self.comp_of_server.remove(&server);
        if tier == ManagedTier::Database {
            if let Some((cj_server, _)) = self.cjdbc {
                let _ = self.legacy.cjdbc_unregister_backend(cj_server, server);
            }
        }
        let _ = self.legacy.remove_server(server);
        if self.legacy.cluster.is_allocated(node) {
            let _ = self.legacy.cluster.release(node);
        }
        self.flush_legacy_outbox(ctx);
        // Redeploy (repair has priority over the inhibition window).
        if !self.tier_busy(tier) {
            self.scale_up(ctx, tier);
        }
        self.record_replica_series(ctx);
    }

    /// Repairs a failed load balancer — the single points of failure of
    /// the architecture (reference \[4\] repairs any managed element, not
    /// only replicas).
    ///
    /// * **PLB / L4 switch**: a fresh instance is deployed on a new node
    ///   and re-bound to every running worker.
    /// * **C-JDBC**: a fresh controller is deployed and every running
    ///   MySQL replica re-registers. The crashed controller's recovery
    ///   log is lost, but all replicas were mutually consistent when it
    ///   died (write broadcast is atomic w.r.t. membership), so the new
    ///   empty log is a valid checkpoint of the current state; each
    ///   replica activates after an (empty) replay.
    #[cold]
    fn repair_balancer(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(&comp) = self.comp_of_server.get(&server) else {
            return;
        };
        let name = self.registry.name(comp).unwrap_or_default();
        let old_node = self
            .legacy
            .server(server)
            .map(|s| s.process().node)
            .expect("failed balancer exists");
        // Which front-end is it?
        let is_plb = self.plb.map(|(s, _)| s) == Some(server);
        let is_cjdbc = self.cjdbc.map(|(s, _)| s) == Some(server);
        let is_l4 = self.l4.map(|(s, _)| s) == Some(server);
        if !(is_plb || is_cjdbc || is_l4) {
            return;
        }
        self.log_reconfig(ctx, format!("self-recovery: repairing balancer {name}"));

        // Remember the worker/backend set before tearing the wreck down —
        // and, for C-JDBC, which backends were *Active* (their state is
        // current) versus Syncing/Disabled (stale: the log that would
        // have caught them up died with the controller).
        let itf = if is_cjdbc { "backends" } else { "workers" };
        let bound: Vec<jade_fractal::ComponentId> = self
            .registry
            .bindings_of(comp, itf)
            .into_iter()
            .map(|ep| ep.component)
            .collect();
        let backend_server = |app: &Self, c: jade_fractal::ComponentId| -> Option<ServerId> {
            app.registry
                .get_attr(c, "server-id")
                .ok()
                .and_then(|v| v.as_int())
                .map(|i| ServerId(jade_sim::id_u32(i)))
        };
        let mut active_backends: Vec<(jade_fractal::ComponentId, ServerId)> = Vec::new();
        let mut stale_backends: Vec<(jade_fractal::ComponentId, ServerId)> = Vec::new();
        if is_cjdbc {
            if let Ok(ctrl) = self.legacy.cjdbc(server) {
                let statuses: Vec<(jade_fractal::ComponentId, Option<jade_tiers::BackendStatus>)> =
                    bound
                        .iter()
                        .map(|&c| {
                            let st = backend_server(self, c).and_then(|sid| ctrl.status(sid).ok());
                            (c, st)
                        })
                        .collect();
                for (c, st) in statuses {
                    if let Some(sid) = backend_server(self, c) {
                        if st == Some(jade_tiers::BackendStatus::Active) {
                            active_backends.push((c, sid));
                        } else {
                            stale_backends.push((c, sid));
                        }
                    }
                }
            }
        }
        for &target in &bound {
            let _ = self
                .registry
                .unbind(&mut self.legacy, comp, itf, Some(target));
        }
        // In-flight requests through the dead front-end are already lost;
        // clean the wreck out of the architecture.
        let parent = if is_cjdbc {
            self.db_tier
        } else if is_plb {
            self.app_tier
        } else {
            self.web_tier
        };
        let _ = self.registry.stop(&mut self.legacy, comp);
        let _ = self.registry.remove_child(parent, comp);
        // Tomcats keep a jdbc-itf binding toward a dead C-JDBC: drop them.
        if is_cjdbc {
            for (src, src_itf) in self.registry.incoming_bindings(comp) {
                let _ = self
                    .registry
                    .unbind(&mut self.legacy, src, &src_itf, Some(comp));
            }
        }
        let _ = self.registry.remove(comp);
        self.comp_of_server.remove(&server);
        let _ = self.legacy.remove_server(server);
        if self.legacy.cluster.is_allocated(old_node) {
            let _ = self.legacy.cluster.release(old_node);
        }

        // Deploy the replacement.
        let Ok(node) = self.legacy.cluster.allocate() else {
            ctx.metrics().incr("scaleup.blocked", 1);
            self.log_reconfig(
                ctx,
                format!("balancer {name} repair blocked: pool exhausted"),
            );
            return;
        };
        let mut pkgs: Vec<&str> = vec![if is_cjdbc { "cjdbc" } else { "plb" }];
        if self.cfg.jade.managed {
            pkgs.push("jade-daemon");
        }
        for pkg in pkgs {
            let _ = self.legacy.sis.install(&mut self.legacy.cluster, node, pkg);
        }
        if is_cjdbc {
            let new_server =
                self.legacy
                    .create_cjdbc("C-JDBC", node, self.cfg.description.database.read_policy);
            let new_comp = self.registry.new_primitive(
                "C-JDBC",
                vec![
                    jade_fractal::InterfaceDecl::server("jdbc", "jdbc"),
                    jade_fractal::InterfaceDecl::collection_client("backends", "mysql"),
                ],
                Box::new(jade_tiers::CjdbcWrapper { server: new_server }),
            );
            let _ = self.registry.set_attr(
                &mut self.legacy,
                new_comp,
                "server-id",
                new_server.0 as i64,
            );
            let _ = self.registry.add_child(self.db_tier, new_comp);
            self.comp_of_server.insert(new_server, new_comp);
            self.cjdbc = Some((new_server, new_comp));
            let _ = self.registry.start(&mut self.legacy, new_comp);
            self.legacy.finish_boot(new_server).ok();
            // Backends that were Active held the current state: they can
            // simply re-register against the fresh (empty) log. Backends
            // that were still synchronizing are *stale* — the log entries
            // they were missing died with the controller — so their state
            // is first restored from a dump of an Active survivor
            // (C-JDBC's backup/restore path) before re-registering.
            let running = |app: &Self, sid: ServerId| {
                app.legacy
                    .server(sid)
                    .map(|s| s.process().state.is_running())
                    .unwrap_or(false)
            };
            let restore_source = active_backends
                .iter()
                .map(|&(_, sid)| sid)
                .find(|&sid| running(self, sid))
                // No Active survivor: anoint the first live stale replica
                // as the reference so the cluster at least restarts
                // mutually consistent (writes beyond its state are lost —
                // the price of losing the controller and every current
                // replica at once).
                .or_else(|| {
                    stale_backends
                        .iter()
                        .map(|&(_, sid)| sid)
                        .find(|&sid| running(self, sid))
                });
            // The fresh controller's log starts empty, so the base image
            // future replicas restore must advance to the reference
            // replica's current state (base + log = current).
            if let Some(src) = restore_source {
                let _ = self.legacy.set_mysql_base_from(src);
            }
            for &(c, sid) in &stale_backends {
                let restorable = self
                    .legacy
                    .server(sid)
                    .map(|s| s.process().state.is_running())
                    .unwrap_or(false);
                if !restorable {
                    continue; // dead too; its own repair handles it
                }
                if let Some(src) = restore_source.filter(|&src| src != sid) {
                    let _ = self.legacy.mysql_restore_from(src, sid);
                    self.log_reconfig(
                        ctx,
                        format!("restored stale backend {sid:?} from a dump of {src:?}"),
                    );
                }
                let _ = self
                    .registry
                    .bind(&mut self.legacy, new_comp, "backends", c, "mysql");
            }
            for &(c, _) in &active_backends {
                let _ = self
                    .registry
                    .bind(&mut self.legacy, new_comp, "backends", c, "mysql");
            }
            // Restore the Tomcats' architectural JDBC bindings.
            for (&s, &c) in self.comp_of_server.clone().iter() {
                if self
                    .legacy
                    .server(s)
                    .map(|sv| sv.process().tier == Tier::Application)
                    .unwrap_or(false)
                {
                    let _ = self
                        .registry
                        .bind(&mut self.legacy, c, "jdbc-itf", new_comp, "jdbc");
                }
            }
        } else {
            let policy = if is_plb {
                self.cfg.description.application.balance_policy
            } else {
                self.cfg
                    .description
                    .web
                    .map(|w| w.balance_policy)
                    .unwrap_or(self.cfg.description.application.balance_policy)
            };
            let (new_server, kind_name, sig) = if is_plb {
                (self.legacy.create_plb("PLB", node, policy), "PLB", "ajp")
            } else {
                (
                    self.legacy.create_l4switch("L4-switch", node, policy),
                    "L4-switch",
                    "http",
                )
            };
            let new_comp = self.registry.new_primitive(
                kind_name,
                vec![
                    jade_fractal::InterfaceDecl::server("http", "http"),
                    jade_fractal::InterfaceDecl::collection_client("workers", sig),
                ],
                Box::new(jade_tiers::BalancerWrapper { server: new_server }),
            );
            let _ = self.registry.set_attr(
                &mut self.legacy,
                new_comp,
                "server-id",
                new_server.0 as i64,
            );
            let parent = if is_plb { self.app_tier } else { self.web_tier };
            let _ = self.registry.add_child(parent, new_comp);
            self.comp_of_server.insert(new_server, new_comp);
            if is_plb {
                self.plb = Some((new_server, new_comp));
            } else {
                self.l4 = Some((new_server, new_comp));
            }
            let _ = self.registry.start(&mut self.legacy, new_comp);
            self.legacy.finish_boot(new_server).ok();
            let server_itf = if is_plb { "ajp" } else { "http" };
            for &target in &bound {
                let _ =
                    self.registry
                        .bind(&mut self.legacy, new_comp, "workers", target, server_itf);
            }
        }
        self.flush_legacy_outbox(ctx);
        self.log_reconfig(
            ctx,
            format!("balancer {name} redeployed on node {}", node.0 + 1),
        );
    }
}
