//! Administration programs built on the uniform management interface —
//! the paper's raison d'être: "relying on this management layer,
//! sophisticated administration programs can be implemented, without
//! having to deal with complex, proprietary configuration interfaces"
//! (§3.2).
//!
//! The rolling restart bounces every replica of a tier, one at a time,
//! keeping the service up throughout: unbind from the balancer → drain →
//! stop → start → (database: recovery-log resynchronization) → rebind →
//! next replica.

use super::msg::{ManagedTier, Msg};
use super::{J2eeApp, RollingRestart};
use jade_sim::{Addr, Ctx};
use jade_tiers::ServerId;
use std::collections::VecDeque;

impl J2eeApp {
    /// Begins a rolling restart of a tier. Ignored when one is already in
    /// progress or the tier has a reconfiguration running.
    #[cold]
    pub(crate) fn start_rolling_restart(&mut self, ctx: &mut Ctx<'_, Msg>, tier: ManagedTier) {
        if self.rolling.is_some() {
            self.log_reconfig(
                ctx,
                "rolling restart refused: one is already running".into(),
            );
            return;
        }
        let mut replicas = self.legacy.running_servers_of(tier.tier());
        replicas.sort_unstable();
        if replicas.len() < 2 {
            self.log_reconfig(
                ctx,
                format!("rolling restart of {tier:?} refused: needs >= 2 replicas to stay up"),
            );
            return;
        }
        self.log_reconfig(
            ctx,
            format!("rolling restart of {tier:?}: {} replicas", replicas.len()),
        );
        self.rolling = Some(RollingRestart {
            tier,
            queue: replicas.into_iter().collect::<VecDeque<_>>(),
            current: None,
            done: 0,
        });
        ctx.send_now(Addr::ROOT, Msg::RollingNext);
    }

    /// Takes the next replica out of rotation.
    #[cold]
    pub(crate) fn on_rolling_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(rolling) = self.rolling.as_mut() else {
            return;
        };
        debug_assert!(rolling.current.is_none());
        let Some(server) = rolling.queue.pop_front() else {
            let done = rolling.done;
            let tier = rolling.tier;
            self.rolling = None;
            self.log_reconfig(
                ctx,
                format!("rolling restart of {tier:?} complete: {done} replicas bounced"),
            );
            return;
        };
        let tier = rolling.tier;
        rolling.current = Some(server);
        let Some(&comp) = self.comp_of_server.get(&server) else {
            self.rolling.as_mut().expect("set above").current = None;
            ctx.send_now(Addr::ROOT, Msg::RollingNext);
            return;
        };
        // Out of rotation: unbind from the front-end (and mod_jk sets).
        let lb = match tier {
            ManagedTier::Application => self.plb.map(|(_, c)| ("workers", c)),
            ManagedTier::Database => self.cjdbc.map(|(_, c)| ("backends", c)),
        };
        if let Some((itf, lb_comp)) = lb {
            let _ = self
                .registry
                .unbind(&mut self.legacy, lb_comp, itf, Some(comp));
        }
        if tier == ManagedTier::Application {
            for apache_comp in self.apache_components() {
                let _ = self
                    .registry
                    .unbind(&mut self.legacy, apache_comp, "ajp-itf", Some(comp));
            }
        }
        self.flush_legacy_outbox(ctx);
        let name = self.registry.name(comp).unwrap_or_default();
        self.log_reconfig(ctx, format!("rolling restart: draining {name}"));
        ctx.send_after(
            self.cfg.drain_grace,
            Addr::ROOT,
            Msg::RollingStop { server },
        );
    }

    /// Drain grace elapsed: bounce the replica (stop + start).
    #[cold]
    pub(crate) fn on_rolling_stop(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        if self.rolling.as_ref().and_then(|r| r.current) != Some(server) {
            return; // operation cancelled (e.g. the replica failed meanwhile)
        }
        let Some(&comp) = self.comp_of_server.get(&server) else {
            return;
        };
        let node = self
            .legacy
            .server(server)
            .map(|s| s.process().node)
            .expect("rolling server exists");
        let _ = self.registry.stop(&mut self.legacy, comp);
        self.flush_legacy_outbox(ctx);
        self.abort_node_jobs(ctx, node);
        // Start again; the boot event re-enters the rotation via
        // `on_rolling_booted`.
        let _ = self.registry.start(&mut self.legacy, comp);
        self.flush_legacy_outbox(ctx);
    }

    /// A rolling replica finished rebooting: wire it back in.
    pub(crate) fn on_rolling_booted(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(rolling) = self.rolling.as_ref() else {
            return;
        };
        if rolling.current != Some(server) {
            return;
        }
        let tier = rolling.tier;
        let Some(&comp) = self.comp_of_server.get(&server) else {
            return;
        };
        match tier {
            ManagedTier::Application => {
                if let Some((_, plb_comp)) = self.plb {
                    let _ = self
                        .registry
                        .bind(&mut self.legacy, plb_comp, "workers", comp, "ajp");
                }
                for apache_comp in self.apache_components() {
                    let _ =
                        self.registry
                            .bind(&mut self.legacy, apache_comp, "ajp-itf", comp, "ajp");
                }
                self.finish_rolling_step(ctx, server);
            }
            ManagedTier::Database => {
                // Rebinding triggers recovery-log resynchronization; the
                // step completes on BackendActivated.
                if let Some((_, cj_comp)) = self.cjdbc {
                    let _ =
                        self.registry
                            .bind(&mut self.legacy, cj_comp, "backends", comp, "mysql");
                }
                self.flush_legacy_outbox(ctx);
            }
        }
    }

    /// The bounced replica is serving again: proceed to the next one.
    #[cold]
    pub(crate) fn finish_rolling_step(&mut self, ctx: &mut Ctx<'_, Msg>, server: ServerId) {
        let Some(rolling) = self.rolling.as_mut() else {
            return;
        };
        if rolling.current != Some(server) {
            return;
        }
        rolling.current = None;
        rolling.done += 1;
        let name = self
            .comp_of_server
            .get(&server)
            .and_then(|&c| self.registry.name(c).ok())
            .unwrap_or_default();
        self.log_reconfig(ctx, format!("rolling restart: {name} back in rotation"));
        ctx.send_now(Addr::ROOT, Msg::RollingNext);
    }
}
