//! Client pool and request flow: the RUBiS client emulator driving the
//! multi-tier request path of paper §2, Figure 1.

use super::msg::{JobOwner, Msg, RequestPhase, RequestState};
use super::{ClientSlot, J2eeApp};
use jade_rubis::EmulatedClient;
use jade_sim::{Addr, Ctx, SimDuration, SlabKey};
use jade_tiers::{RequestId, ServerId};

/// Approximate HTTP request size on the wire.
const REQUEST_BYTES: u64 = 600;
/// Bound on a Tomcat connector's accept queue; beyond it connections are
/// refused (the client retries after thinking).
const ACCEPT_QUEUE_LIMIT: usize = 512;

impl J2eeApp {
    // ------------------------------------------------------------------
    // Client pool
    // ------------------------------------------------------------------

    // jade-audit: allow(hot-panic, unbounded-growth): the client slab
    // grows monotonically to the configured ramp target and is indexed
    // by dense ids minted at push time; retired clients are deactivated
    // in place, never removed.
    pub(crate) fn on_ramp_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Aggregate mode: the population is a set of counts; ramping is
        // pure bookkeeping on the pool (growth adds fresh sessions,
        // shrinkage retires idle ones and books in-flight debt).
        if let Some(pool) = self.pool.as_mut() {
            let target = u64::from(self.cfg.ramp.clients_at(ctx.now()));
            pool.set_target(target);
            let now = ctx.now();
            let ids = self.hot_ids(ctx);
            ctx.metrics()
                .record_series_id(ids.clients, now, target as f64);
            ctx.send_after_coarse(self.cfg.ramp_tick, Addr::ROOT, Msg::RampTick);
            return;
        }
        let target = self.cfg.ramp.clients_at(ctx.now()) as usize;
        // Grow: reactivate parked clients, then create new ones.
        let mut active: usize = self.clients.iter().filter(|c| c.active).count();
        for i in 0..self.clients.len() {
            if active >= target {
                break;
            }
            if !self.clients[i].active {
                self.clients[i].active = true;
                active += 1;
                if !self.clients[i].busy {
                    self.clients[i].busy = true;
                    let stagger = SimDuration::from_secs_f64(
                        ctx.rng().f64() * self.cfg.think_time.as_secs_f64(),
                    );
                    ctx.send_after_coarse(stagger, Addr::ROOT, Msg::ClientThink(i as u32));
                }
            }
        }
        while active < target {
            let id = jade_sim::id_u32(self.clients.len());
            let rng = ctx.rng().fork();
            self.clients.push(ClientSlot {
                client: EmulatedClient::new(id, rng, self.cfg.think_time),
                active: true,
                busy: true,
            });
            let stagger =
                SimDuration::from_secs_f64(ctx.rng().f64() * self.cfg.think_time.as_secs_f64());
            ctx.send_after_coarse(stagger, Addr::ROOT, Msg::ClientThink(id));
            active += 1;
        }
        // Shrink: park the highest-numbered clients; they retire at the
        // end of their current cycle.
        if active > target {
            let mut excess = active - target;
            for slot in self.clients.iter_mut().rev() {
                if excess == 0 {
                    break;
                }
                if slot.active {
                    slot.active = false;
                    excess -= 1;
                }
            }
        }
        let now = ctx.now();
        let ids = self.hot_ids(ctx);
        ctx.metrics()
            .record_series_id(ids.clients, now, target as f64);
        ctx.send_after_coarse(self.cfg.ramp_tick, Addr::ROOT, Msg::RampTick);
    }

    /// Schedules the client's next think-cycle. Think timers are the
    /// bulk of the pending set — one per idle client — so they ride the
    /// timer wheel, not the min-heap.
    // jade-audit: allow(hot-panic): client ids are minted by
    // on_ramp_tick as dense indexes into the clients slab and never
    // escape the valid range.
    pub(crate) fn schedule_think(&mut self, ctx: &mut Ctx<'_, Msg>, client: u32) {
        let slot = &mut self.clients[client as usize];
        if !slot.active {
            slot.busy = false;
            return;
        }
        slot.busy = true;
        let think = slot.client.think_time();
        ctx.send_after_coarse(think, Addr::ROOT, Msg::ClientThink(client));
    }

    // jade-audit: allow(hot-panic): client ids are dense slab indexes
    // minted by on_ramp_tick (see schedule_think).
    pub(crate) fn on_client_think(&mut self, ctx: &mut Ctx<'_, Msg>, client: u32) {
        // Reuse a retired request's compiled-run buffers for the new plan.
        let (params, demands) = self.param_recycle.pop().unwrap_or_default();
        let slot = &mut self.clients[client as usize];
        if !slot.active {
            slot.busy = false;
            self.param_recycle.push((params, demands));
            return;
        }
        let plan = if self.cfg.markov_navigation {
            slot.client.next_interaction_markov_into(
                &self.transitions,
                &mut self.ks,
                params,
                demands,
            )
        } else {
            slot.client
                .next_interaction_in_mix_into(&self.mix, &mut self.ks, params, demands)
        };
        self.dispatch_interaction(ctx, client, plan);
    }

    /// One aggregate issuance tick: every idle session fires with the
    /// binomial probability implied by the tick length and the
    /// exponential think-time mean; each issuer draws a uniform dispatch
    /// offset within the tick and its navigation transition (in the
    /// pool's documented bucket order), and the materialization is
    /// deferred to [`Msg::PoolDispatch`].
    // jade-audit: allow(hot-panic): the expect encodes the mode
    // invariant tested by the let-else on the preceding lines — the
    // aggregate pool exists exactly when client_mode is Aggregate.
    pub(crate) fn on_pool_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let crate::config::ClientMode::Aggregate { tick } = self.cfg.client_mode else {
            return;
        };
        let dt = tick.as_secs_f64();
        let p = 1.0 - (-dt / self.cfg.think_time.as_secs_f64()).exp();
        let mut pool = self.pool.take().expect("pool tick implies aggregate mode");
        let mut out = std::mem::take(&mut self.pool_scratch);
        out.clear();
        {
            let markov = self.cfg.markov_navigation;
            let transitions = &self.transitions;
            let mix = &self.mix;
            pool.tick(p, ctx.rng(), |rng, bucket| {
                let offset = SimDuration::from_secs_f64(rng.f64() * dt);
                let (ret, interaction) = if markov {
                    // A fresh session enters at Home without a draw,
                    // exactly like `EmulatedClient`; the issued
                    // interaction *is* the session's new state.
                    let s = if bucket == jade_rubis::FRESH_BUCKET {
                        transitions.home()
                    } else {
                        transitions.next(bucket, rng)
                    };
                    (s as u32, s as u32)
                } else {
                    // The i.i.d. mix tracks no state: sample the
                    // interaction, return to the fresh bucket.
                    let t = mix.sample_index(rng);
                    (jade_rubis::FRESH_BUCKET as u32, t as u32)
                };
                out.push((offset, ret, interaction));
            });
        }
        for &(offset, bucket, interaction) in &out {
            ctx.send_after_coarse(
                offset,
                Addr::ROOT,
                Msg::PoolDispatch {
                    bucket,
                    interaction,
                },
            );
        }
        self.pool_scratch = out;
        self.pool = Some(pool);
        ctx.send_after_coarse(tick, Addr::ROOT, Msg::PoolTick);
    }

    /// An aggregate session's think time elapsed: materialize the plan
    /// (this is the only point an aggregate session pays per-session
    /// cost) and route it like any per-client request. The request
    /// carries the return bucket in its `client` field.
    pub(crate) fn on_pool_dispatch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        bucket: u32,
        interaction: u32,
    ) {
        let (params, demands) = self.param_recycle.pop().unwrap_or_default();
        let plan = jade_rubis::interactions::generate_plan_compiled_into(
            interaction as usize,
            &mut self.ks,
            ctx.rng(),
            params,
            demands,
        );
        self.dispatch_interaction(ctx, bucket, plan);
    }

    /// Returns the session behind `client` to its idle state after a
    /// request left the system: per-client mode re-arms the think
    /// timer, aggregate mode re-counts the session in its bucket.
    pub(crate) fn session_idle(&mut self, ctx: &mut Ctx<'_, Msg>, client: u32) {
        if let Some(pool) = self.pool.as_mut() {
            pool.complete(client as usize);
        } else {
            self.schedule_think(ctx, client);
        }
    }

    /// Routes a freshly generated interaction into the system — through
    /// the web tier when deployed, else via the PLB front-end straight
    /// to a Tomcat. Shared by both emulation modes; `client` is the
    /// issuing client index (per-client) or return bucket (aggregate).
    fn dispatch_interaction(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: u32,
        plan: jade_tiers::InteractionPlan,
    ) {
        // With a web tier deployed, every request enters through the L4
        // switch and an Apache replica (paper Figure 2); otherwise it goes
        // straight through the PLB front-end to a Tomcat.
        if let Some((l4_server, _)) = self.l4 {
            let apache = {
                let rng = ctx.rng();
                self.legacy.balancer_route_running(l4_server, rng)
            };
            let apache = match apache {
                Ok(a) => a,
                Err(_) => {
                    self.recycle_plan(plan);
                    self.stats.record_failure(ctx.now());
                    self.session_idle(ctx, client);
                    return;
                }
            };
            let req = self.new_request(ctx, client, plan);
            if let Some(st) = self.request_mut(req) {
                st.apache = Some(apache);
                st.phase = RequestPhase::WebServe;
            }
            let delay = self.legacy.net.client_delay(REQUEST_BYTES);
            ctx.send_after(delay, Addr::ROOT, Msg::ApacheAccept { req, apache });
            return;
        }

        let Some((plb_server, _)) = self.plb else {
            self.recycle_plan(plan);
            self.stats.record_failure(ctx.now());
            self.session_idle(ctx, client);
            return;
        };
        // One routing pass resolves the worker plus both endpoint nodes,
        // instead of re-probing the server table for each.
        let routed = {
            let rng = ctx.rng();
            self.legacy
                .balancer_route_running_with_nodes(plb_server, rng)
        };
        let (tomcat, plb_node, tomcat_node) = match routed {
            Ok(r) => r,
            Err(_) => {
                self.recycle_plan(plan);
                self.stats.record_failure(ctx.now());
                self.session_idle(ctx, client);
                return;
            }
        };
        let req = self.new_request(ctx, client, plan);
        // Client → front-end → replica network path.
        let delay = self.legacy.net.client_delay(REQUEST_BYTES)
            + self.legacy.net.delay(plb_node, tomcat_node, REQUEST_BYTES);
        // The front-end spends a little CPU forwarding the connection
        // (concurrently with the request's own path).
        self.submit_job(
            ctx,
            plb_node,
            JobOwner::Routing,
            SimDuration::from_micros(100),
        );
        ctx.send_after(delay, Addr::ROOT, Msg::TomcatAccept { req, tomcat });
    }

    // jade-audit: allow(unbounded-growth): inflight is a slab keyed by
    // RequestId; on_response/fail_request remove the entry when the
    // request completes, so residency equals concurrently open requests.
    fn new_request(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: u32,
        plan: jade_tiers::InteractionPlan,
    ) -> RequestId {
        let seq = self.next_request_seq;
        self.next_request_seq += 1;
        let jobs = self.jobs_recycle.pop().unwrap_or_default();
        let key = self.inflight.insert(RequestState {
            client,
            seq,
            started: ctx.now(),
            plan,
            apache: None,
            tomcat: None,
            phase: RequestPhase::Queued,
            sql_idx: 0,
            pending_db: 0,
            jobs,
            abandon: None,
        });
        let req = RequestId(key.raw());
        // Impatient clients abandon requests that take too long. The
        // timer token is kept in the slot so completion can cancel it.
        if let Some(patience) = self.cfg.client_patience {
            let tok = ctx.send_after_coarse(patience, Addr::ROOT, Msg::ClientAbandon { req });
            if let Some(state) = self.inflight.get_mut(key) {
                state.abandon = Some(tok);
            }
        }
        req
    }

    /// The client's patience ran out: abandon the request if it is still
    /// in flight. A stale id (the request completed and its slot was
    /// reused) misses the generation check and is ignored.
    pub(crate) fn on_client_abandon(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(state) = self.request_mut(req) else {
            return;
        };
        // This timer just fired; don't cancel it again in fail_request.
        state.abandon = None;
        let ids = self.hot_ids(ctx);
        ctx.metrics().incr_id(ids.abandoned, 1);
        self.fail_request(ctx, req);
    }

    /// An HTTP request reached an Apache: charge the (small) web-tier CPU
    /// cost; static documents are answered directly, dynamic requests are
    /// forwarded to a Tomcat via mod_jk when the job completes.
    pub(crate) fn on_apache_accept(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: RequestId,
        apache: ServerId,
    ) {
        if !self.request_live(req) {
            return;
        }
        let (running, node, demand) = match self.legacy.server(apache) {
            Ok(jade_tiers::LegacyServer::Apache(a)) => (
                a.process.state.is_running(),
                a.process.node,
                a.static_demand,
            ),
            _ => (false, jade_cluster::NodeId(0), SimDuration::ZERO),
        };
        if !running {
            self.fail_request(ctx, req);
            return;
        }
        self.submit_job(ctx, node, JobOwner::ApacheServe(req), demand);
    }

    /// The Apache job finished: respond (static) or forward (dynamic).
    // jade-audit: allow(hot-panic): a request in ApachePre phase always
    // carries the apache that accepted it (set by dispatch).
    pub(crate) fn on_apache_done(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(state) = self.request_mut(req) else {
            return;
        };
        // Static documents never leave the web tier (paper §2: "the web
        // server directly returns that document to the client").
        if state.plan.sql.is_empty() {
            state.phase = RequestPhase::Responding;
            let bytes = state.plan.response_bytes;
            let delay = self.legacy.net.client_delay(bytes);
            ctx.send_after(delay, Addr::ROOT, Msg::ResponseDelivered { req });
            return;
        }
        let apache = state.apache.expect("web-served request has an apache");
        let tomcat = match self.legacy.server_mut(apache) {
            Ok(jade_tiers::LegacyServer::Apache(a)) => a.next_worker(),
            _ => None,
        };
        let tomcat = match tomcat {
            Some(t)
                if self
                    .legacy
                    .server(t)
                    .map(|s| s.process().state.is_running())
                    .unwrap_or(false) =>
            {
                t
            }
            _ => {
                self.fail_request(ctx, req);
                return;
            }
        };
        let hop = self.legacy.net.hop_latency;
        ctx.send_after(hop, Addr::ROOT, Msg::TomcatAccept { req, tomcat });
    }

    // ------------------------------------------------------------------
    // Application tier
    // ------------------------------------------------------------------

    // jade-audit: allow(hot-panic): the tomcat id was resolved by the
    // routing step one message earlier and server slots are only retired
    // by repair paths, which first fail the requests bound to them.
    pub(crate) fn on_tomcat_accept(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: RequestId,
        tomcat: ServerId,
    ) {
        let Some(state) = self.request_mut(req) else {
            return;
        };
        state.tomcat = Some(tomcat);
        let running = self
            .legacy
            .server(tomcat)
            .map(|s| s.process().state.is_running())
            .unwrap_or(false);
        if !running {
            self.fail_request(ctx, req);
            return;
        }
        let has_capacity = self
            .legacy
            .tomcat_mut(tomcat)
            .expect("tomcat exists")
            .has_capacity();
        if has_capacity {
            self.start_servlet(ctx, req);
        } else {
            let queue = self.accept_queue_mut(tomcat);
            if queue.len() < ACCEPT_QUEUE_LIMIT {
                queue.push_back(req);
            } else {
                self.fail_request(ctx, req); // connection refused
            }
        }
    }

    /// Allocates a worker thread and starts the pre-query servlet work.
    // jade-audit: allow(hot-panic): callers (serve_accept_queue /
    // on_tomcat_accept) have already verified the request exists and is
    // bound to a live tomcat; the expects restate those checks.
    fn start_servlet(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let (tomcat, demand) = {
            let state = self.request_mut(req).expect("checked in caller");
            state.phase = RequestPhase::ServletPre;
            (
                state.tomcat.expect("accepted request has a tomcat"),
                state.plan.pre_demand,
            )
        };
        let node = {
            let t = self.legacy.tomcat_mut(tomcat).expect("tomcat exists");
            t.active += 1;
            t.process.node
        };
        self.submit_job(ctx, node, JobOwner::ServletPre(req), demand);
    }

    /// When a worker thread frees up, admit the next queued request.
    pub(crate) fn serve_accept_queue(&mut self, ctx: &mut Ctx<'_, Msg>, tomcat: ServerId) {
        loop {
            let next = match self.accept_queues.get_mut(tomcat.0 as usize) {
                Some(q) => q.pop_front(),
                None => return,
            };
            let Some(req) = next else { return };
            if self.request_live(req) {
                self.start_servlet(ctx, req);
                return;
            }
            // Request vanished (failed) while queued; try the next one.
        }
    }

    // ------------------------------------------------------------------
    // Database tier
    // ------------------------------------------------------------------

    /// Dispatches the request's next SQL op to C-JDBC — or, when the plan
    /// is exhausted, starts the post-query page generation.
    #[jade_hot::jade_hot]
    pub(crate) fn on_db_dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(state) = self.request(req) else {
            return;
        };
        // jade-audit: allow(hot-panic): tomcat is assigned before the first DbDispatch is scheduled
        let tomcat = state.tomcat.expect("SQL phase implies a tomcat");
        if state.sql_idx >= state.plan.sql.len() {
            let demand = state.plan.post_demand;
            let node = match self.legacy.server(tomcat) {
                Ok(s) if s.process().state.is_running() => s.process().node,
                _ => {
                    self.fail_request(ctx, req);
                    return;
                }
            };
            if let Some(st) = self.request_mut(req) {
                st.phase = RequestPhase::ServletPost;
            }
            self.submit_job(ctx, node, JobOwner::ServletPost(req), demand);
            return;
        }
        // jade-audit: allow(hot-panic): sql_idx < plan.sql.len() checked by the early-return above
        let is_write = state.plan.sql.is_write_at(state.sql_idx);
        let Some((cjdbc, _)) = self.cjdbc else {
            self.fail_request(ctx, req);
            return;
        };
        // C-JDBC burns CPU on its own node routing every query (the paper
        // gave the database load balancer a dedicated machine).
        if let Ok(jade_tiers::LegacyServer::Cjdbc {
            process,
            routing_demand,
            ..
        }) = self.legacy.server(cjdbc)
        {
            let (cj_node, demand) = (process.node, *routing_demand);
            self.submit_job(ctx, cj_node, JobOwner::Routing, demand);
        }
        // The query is executed by reference straight out of the slab slot
        // (a compiled step borrows its shared program and the request's
        // parameter buffer); `inflight` and `legacy` are disjoint fields,
        // so no clone.
        if is_write {
            // Recycled broadcast buffer: the primary executes once, the
            // replicas apply its delta, and no targets `Vec` is allocated
            // in steady state.
            let mut targets = std::mem::take(&mut self.db_write_targets);
            let (executed, demand) = {
                let state = self
                    .inflight
                    .get(SlabKey::from_raw(req.0))
                    // jade-audit: allow(hot-panic): request(req) returned Some at function entry
                    .expect("request checked live above");
                // jade-audit: allow(hot-panic): sql_idx < plan.sql.len() checked by the early-return above
                let query = state.plan.sql.query_at(state.sql_idx);
                (
                    self.legacy
                        .cjdbc_execute_write_into(cjdbc, query, &mut targets),
                    query.demand(),
                )
            };
            match executed {
                Ok(()) => {
                    if let Some(st) = self.request_mut(req) {
                        st.pending_db = targets.len();
                    }
                    for &backend in &targets {
                        let node = self
                            .legacy
                            .server(backend)
                            .map(|s| s.process().node)
                            // jade-audit: allow(hot-panic): cjdbc_execute_write_into targets only live backends
                            .expect("active backend exists");
                        self.submit_job(
                            ctx,
                            node,
                            JobOwner::DbWrite {
                                req,
                                cjdbc,
                                backend,
                            },
                            demand,
                        );
                    }
                }
                Err(_) => self.fail_request(ctx, req),
            }
            self.db_write_targets = targets;
        } else {
            let routed = {
                let state = self
                    .inflight
                    .get(SlabKey::from_raw(req.0))
                    // jade-audit: allow(hot-panic): request(req) returned Some at function entry
                    .expect("request checked live above");
                // jade-audit: allow(hot-panic): sql_idx < plan.sql.len() checked by the early-return above
                let query = state.plan.sql.query_at(state.sql_idx);
                let rng = ctx.rng();
                self.legacy.cjdbc_execute_read(cjdbc, query, rng)
            };
            match routed {
                Ok((backend, demand)) => {
                    if let Some(st) = self.request_mut(req) {
                        st.pending_db = 1;
                    }
                    let node = self
                        .legacy
                        .server(backend)
                        .map(|s| s.process().node)
                        // jade-audit: allow(hot-panic): cjdbc_execute_read routes only to live backends
                        .expect("active backend exists");
                    self.submit_job(
                        ctx,
                        node,
                        JobOwner::DbRead {
                            req,
                            cjdbc,
                            backend,
                        },
                        demand,
                    );
                }
                Err(_) => self.fail_request(ctx, req),
            }
        }
    }

    /// A database job finished; advance the request when all replicas of
    /// the current op are done.
    pub(crate) fn on_db_job_done(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: RequestId,
        cjdbc: ServerId,
        backend: ServerId,
    ) {
        self.legacy.cjdbc_note_complete(cjdbc, backend);
        let Some(state) = self.request_mut(req) else {
            return;
        };
        state.pending_db = state.pending_db.saturating_sub(1);
        if state.pending_db > 0 {
            return;
        }
        state.sql_idx += 1;
        state.phase = RequestPhase::Sql;
        // LAN hop back to the servlet and on to the next query.
        let hop = self.legacy.net.hop_latency;
        ctx.send_after(hop, Addr::ROOT, Msg::DbDispatch { req });
    }

    // ------------------------------------------------------------------
    // Completion / failure
    // ------------------------------------------------------------------

    /// The post-query servlet work finished: free the worker thread and
    /// ship the response.
    // jade-audit: allow(hot-panic): a request in Servlet phase always
    // carries its tomcat binding (set by start_servlet).
    pub(crate) fn on_servlet_done(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(state) = self.request_mut(req) else {
            return;
        };
        state.phase = RequestPhase::Responding;
        let tomcat = state.tomcat.expect("servlet phase implies a tomcat");
        let via_web = state.apache.is_some();
        let bytes = state.plan.response_bytes;
        if let Ok(t) = self.legacy.tomcat_mut(tomcat) {
            t.active = t.active.saturating_sub(1);
        }
        self.serve_accept_queue(ctx, tomcat);
        // The response travels back through the web tier when present.
        let mut delay = self.legacy.net.client_delay(bytes);
        if via_web {
            delay += self.legacy.net.hop_latency;
        }
        ctx.send_after(delay, Addr::ROOT, Msg::ResponseDelivered { req });
    }

    // jade-audit: allow(hot-panic): the responding request's client id
    // is a dense index into the clients slab (see schedule_think).
    pub(crate) fn on_response(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(state) = self.remove_request(req) else {
            return;
        };
        // The client answered; its patience timer is moot.
        if let Some(tok) = state.abandon {
            ctx.cancel(tok);
        }
        let latency = ctx.now() - state.started;
        self.stats
            .record_completion_of(ctx.now(), latency, state.plan.name);
        let ids = self.hot_ids(ctx);
        ctx.metrics().record_latency_id(ids.latency, latency);
        ctx.metrics().incr_id(ids.completed, 1);
        let client = state.client;
        self.recycle_request(state);
        if self.pool.is_some() {
            self.session_idle(ctx, client);
        } else {
            self.clients[client as usize].client.note_completed();
            self.schedule_think(ctx, client);
        }
    }

    /// Fails a request: aborts its CPU jobs, releases its worker thread,
    /// notifies statistics and sends the client back to thinking.
    // jade-audit: allow(hot-alloc): the format! sits inside a lazy
    // ctx.trace closure, rendered only when Warn-level tracing is
    // enabled — never on the measurement path.
    pub(crate) fn fail_request(&mut self, ctx: &mut Ctx<'_, Msg>, req: RequestId) {
        let Some(mut state) = self.remove_request(req) else {
            return;
        };
        if let Some(tok) = state.abandon.take() {
            ctx.cancel(tok);
        }
        // Abort any CPU job still owned by this request. `state.jobs` is
        // in submission order; completed jobs left stale generational ids
        // behind, which the slab remove simply rejects.
        let mut jobs = std::mem::take(&mut state.jobs);
        for job in jobs.drain(..) {
            let Some(owner) = self.job_owner.remove(SlabKey::from_raw(job.0)) else {
                continue;
            };
            let node = match owner {
                JobOwner::ApacheServe(_) => state
                    .apache
                    .and_then(|a| self.legacy.server(a).ok())
                    .map(|s| s.process().node),
                JobOwner::ServletPre(_) | JobOwner::ServletPost(_) => state
                    .tomcat
                    .and_then(|t| self.legacy.server(t).ok())
                    .map(|s| s.process().node),
                JobOwner::DbRead { backend, cjdbc, .. }
                | JobOwner::DbWrite { backend, cjdbc, .. } => {
                    self.legacy.cjdbc_note_complete(cjdbc, backend);
                    self.legacy.server(backend).ok().map(|s| s.process().node)
                }
                JobOwner::Daemon | JobOwner::Routing => None,
            };
            if let Some(node) = node {
                if let Ok(n) = self.legacy.cluster.node_mut(node) {
                    n.cpu.abort(ctx.now(), job);
                }
                self.rearm_cpu(ctx, node);
            }
        }
        state.jobs = jobs;
        // Release the worker thread if the request held one.
        if matches!(
            state.phase,
            RequestPhase::ServletPre | RequestPhase::Sql | RequestPhase::ServletPost
        ) {
            if let Some(tomcat) = state.tomcat {
                if let Ok(t) = self.legacy.tomcat_mut(tomcat) {
                    t.active = t.active.saturating_sub(1);
                }
                self.serve_accept_queue(ctx, tomcat);
            }
        }
        self.stats.record_failure_of(ctx.now(), state.plan.name);
        let ids = self.hot_ids(ctx);
        ctx.metrics().incr_id(ids.failed, 1);
        ctx.trace(jade_sim::TraceLevel::Warn, "request", || {
            format!(
                "request {req:?} ({}) failed in phase {:?}",
                state.plan.name, state.phase
            )
        });
        let client = state.client;
        self.recycle_request(state);
        self.session_idle(ctx, client);
    }

    /// Routes CPU-job completions to their owners.
    pub(crate) fn on_cpu_complete(&mut self, ctx: &mut Ctx<'_, Msg>, node: jade_cluster::NodeId) {
        // Drain into the recycled scratch buffer (taken out of `self` so
        // the borrow checker allows the handler calls below to use it).
        let mut done = std::mem::take(&mut self.completion_scratch);
        done.clear();
        if let Ok(n) = self.legacy.cluster.node_mut(node) {
            n.cpu.collect_completions_into(ctx.now(), &mut done);
        }
        for job in done.drain(..) {
            let Some(owner) = self.job_owner.remove(SlabKey::from_raw(job.0)) else {
                continue;
            };
            match owner {
                JobOwner::ServletPre(req) => {
                    if let Some(state) = self.request_mut(req) {
                        state.phase = RequestPhase::Sql;
                        state.sql_idx = 0;
                    }
                    let hop = self.legacy.net.hop_latency;
                    ctx.send_after(hop, Addr::ROOT, Msg::DbDispatch { req });
                }
                JobOwner::ServletPost(req) => self.on_servlet_done(ctx, req),
                JobOwner::ApacheServe(req) => self.on_apache_done(ctx, req),
                JobOwner::DbRead {
                    req,
                    cjdbc,
                    backend,
                }
                | JobOwner::DbWrite {
                    req,
                    cjdbc,
                    backend,
                } => self.on_db_job_done(ctx, req, cjdbc, backend),
                JobOwner::Daemon | JobOwner::Routing => {}
            }
        }
        self.completion_scratch = done;
        self.rearm_cpu(ctx, node);
    }
}
