//! A minimal XML subset parser for the ADL.
//!
//! The paper's architecture descriptions are "XML documents" interpreted
//! by the deployer (§3.3). To avoid an external dependency the repository
//! parses the subset the ADL needs: nested elements, double-quoted
//! attributes, text nodes, comments, and self-closing tags. No namespaces,
//! DTDs, CDATA or processing instructions.

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl XmlElement {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given tag.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given tag.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_comments_and_ws(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.src[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(rel) => self.pos += rel + 3,
                    None => return self.err("unterminated comment"),
                }
            } else if self.starts_with("<?") {
                match self.src[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => return self.err("unterminated processing instruction"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'-' | b'_' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_attributes(&mut self) -> Result<Vec<(String, String)>, XmlError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {}
            }
            let key = self.parse_name()?;
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return self.err(format!("expected '=' after attribute '{key}'"));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => q,
                _ => return self.err("expected quoted attribute value"),
            };
            self.pos += 1;
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(quote) {
                return self.err("unterminated attribute value");
            }
            let value = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.pos += 1;
            attrs.push((key, unescape(&value)));
        }
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return self.err("expected '<'");
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let attributes = self.parse_attributes()?;
        let mut element = XmlElement {
            name,
            attributes,
            children: Vec::new(),
            text: String::new(),
        };
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok(element);
        }
        if self.peek() != Some(b'>') {
            return self.err("expected '>' or '/>'");
        }
        self.pos += 1;
        loop {
            // Text until next markup.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'<' {
                    break;
                }
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                if !element.text.is_empty() {
                    element.text.push(' ');
                }
                element.text.push_str(&unescape(trimmed));
            }
            if self.peek().is_none() {
                return self.err(format!("unterminated element <{}>", element.name));
            }
            if self.starts_with("<!--") {
                self.skip_comments_and_ws()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return self.err(format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        element.name
                    ));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.err("expected '>' after closing tag");
                }
                self.pos += 1;
                return Ok(element);
            }
            element.children.push(self.parse_element()?);
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a document, returning its root element.
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
    };
    p.skip_comments_and_ws()?;
    let root = p.parse_element()?;
    p.skip_comments_and_ws()?;
    if p.pos != p.src.len() {
        return p.err("trailing content after the root element");
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"
            <?xml version="1.0"?>
            <!-- the paper's ADL -->
            <j2ee name="rubis">
                <tier kind="application" replicas="2"/>
                <tier kind="database" replicas="1">
                    <param key="read-policy" value="least-pending"/>
                </tier>
            </j2ee>
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "j2ee");
        assert_eq!(root.attr("name"), Some("rubis"));
        assert_eq!(root.children.len(), 2);
        let db = root
            .children_named("tier")
            .find(|t| t.attr("kind") == Some("database"))
            .unwrap();
        assert_eq!(
            db.child("param").unwrap().attr("value"),
            Some("least-pending")
        );
    }

    #[test]
    fn parses_text_and_entities() {
        let root = parse("<a note='x &amp; y'>hello <b/> world</a>").unwrap();
        assert_eq!(root.text, "hello world");
        assert_eq!(root.attr("note"), Some("x & y"));
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a><b/>").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a attr='x>").is_err());
    }

    #[test]
    fn self_closing_and_quotes() {
        let root = parse(r#"<x a="1" b='2'/>"#).unwrap();
        assert_eq!(root.attr("a"), Some("1"));
        assert_eq!(root.attr("b"), Some("2"));
        assert!(root.children.is_empty());
    }
}
