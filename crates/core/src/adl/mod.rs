//! The Architecture Description Language (paper §3.3): "The architecture
//! of an application is described using an ADL … This description is an
//! XML document which details the architectural structure of the
//! application to deploy on the cluster, e.g. which software resources
//! compose the multi-tier J2EE application, how many replicas are created
//! for each tier, how are the tiers bound together."

pub mod xml;

use crate::adl::xml::{parse, XmlElement, XmlError};
use jade_tiers::{BalancePolicy, ReadPolicy};
use std::fmt;

/// Errors turning XML into a deployable description.
#[derive(Debug, Clone, PartialEq)]
pub enum AdlError {
    /// Underlying XML syntax error.
    Xml(XmlError),
    /// Semantically invalid description.
    Invalid(String),
}

impl fmt::Display for AdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdlError::Xml(e) => write!(f, "{e}"),
            AdlError::Invalid(m) => write!(f, "invalid ADL: {m}"),
        }
    }
}

impl std::error::Error for AdlError {}

impl From<XmlError> for AdlError {
    fn from(e: XmlError) -> Self {
        AdlError::Xml(e)
    }
}

/// Which tier a spec configures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierKind {
    /// Static web tier (Apache behind an L4 switch).
    Web,
    /// Servlet tier (Tomcat behind PLB).
    Application,
    /// Database tier (MySQL behind C-JDBC).
    Database,
}

/// Per-tier deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierSpec {
    /// Tier being configured.
    pub kind: TierKind,
    /// Initial replica count.
    pub replicas: usize,
    /// HTTP balancing policy (web/application tiers).
    pub balance_policy: BalancePolicy,
    /// Read policy (database tier).
    pub read_policy: ReadPolicy,
}

impl TierSpec {
    /// Default spec for a tier with `replicas` initial replicas.
    pub fn new(kind: TierKind, replicas: usize) -> Self {
        TierSpec {
            kind,
            replicas,
            balance_policy: BalancePolicy::RoundRobin,
            read_policy: ReadPolicy::LeastPending,
        }
    }
}

/// A deployable multi-tier architecture description.
#[derive(Debug, Clone, PartialEq)]
pub struct J2eeDescription {
    /// Application name.
    pub name: String,
    /// Optional static web tier.
    pub web: Option<TierSpec>,
    /// Servlet tier.
    pub application: TierSpec,
    /// Database tier.
    pub database: TierSpec,
}

impl J2eeDescription {
    /// The paper's initial deployment: "the J2EE system is deployed with
    /// one application server (Tomcat) and one database server (MySQL)"
    /// (§5.2). The web tier is omitted, as in the quantitative scenario.
    pub fn paper_initial() -> Self {
        J2eeDescription {
            name: "rubis".into(),
            web: None,
            application: TierSpec::new(TierKind::Application, 1),
            database: TierSpec::new(TierKind::Database, 1),
        }
    }

    /// Parses an ADL document.
    pub fn from_xml(doc: &str) -> Result<Self, AdlError> {
        let root = parse(doc)?;
        if root.name != "j2ee" {
            return Err(AdlError::Invalid(format!(
                "root element must be <j2ee>, found <{}>",
                root.name
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| AdlError::Invalid("<j2ee> needs a name attribute".into()))?
            .to_owned();
        let mut web = None;
        let mut application = None;
        let mut database = None;
        for tier in root.children_named("tier") {
            let spec = parse_tier(tier)?;
            let slot = match spec.kind {
                TierKind::Web => &mut web,
                TierKind::Application => &mut application,
                TierKind::Database => &mut database,
            };
            if slot.is_some() {
                return Err(AdlError::Invalid(format!(
                    "tier '{:?}' declared twice",
                    spec.kind
                )));
            }
            *slot = Some(spec);
        }
        Ok(J2eeDescription {
            name,
            web,
            application: application
                .ok_or_else(|| AdlError::Invalid("missing application tier".into()))?,
            database: database.ok_or_else(|| AdlError::Invalid("missing database tier".into()))?,
        })
    }

    /// Renders the description back to XML (round-trips through
    /// [`J2eeDescription::from_xml`]).
    pub fn to_xml(&self) -> String {
        let mut out = format!("<j2ee name=\"{}\">\n", self.name);
        let tier_xml = |spec: &TierSpec| {
            let kind = match spec.kind {
                TierKind::Web => "web",
                TierKind::Application => "application",
                TierKind::Database => "database",
            };
            let policy = match spec.balance_policy {
                BalancePolicy::RoundRobin => "round-robin",
                BalancePolicy::Random => "random",
            };
            let read = match spec.read_policy {
                ReadPolicy::RoundRobin => "round-robin",
                ReadPolicy::Random => "random",
                ReadPolicy::LeastPending => "least-pending",
            };
            format!(
                "  <tier kind=\"{kind}\" replicas=\"{}\" policy=\"{policy}\" read-policy=\"{read}\"/>\n",
                spec.replicas
            )
        };
        if let Some(w) = &self.web {
            out.push_str(&tier_xml(w));
        }
        out.push_str(&tier_xml(&self.application));
        out.push_str(&tier_xml(&self.database));
        out.push_str("</j2ee>\n");
        out
    }

    /// Total nodes the initial deployment needs (replicas + balancers).
    pub fn initial_nodes(&self) -> usize {
        let mut n = self.application.replicas + 1 // PLB
            + self.database.replicas + 1; // C-JDBC
        if let Some(w) = &self.web {
            n += w.replicas + 1; // L4 switch
        }
        n
    }
}

fn parse_tier(e: &XmlElement) -> Result<TierSpec, AdlError> {
    let kind = match e.attr("kind") {
        Some("web") => TierKind::Web,
        Some("application") => TierKind::Application,
        Some("database") => TierKind::Database,
        other => {
            return Err(AdlError::Invalid(format!(
                "tier kind must be web|application|database, found {other:?}"
            )))
        }
    };
    let replicas: usize = e
        .attr("replicas")
        .unwrap_or("1")
        .parse()
        .map_err(|_| AdlError::Invalid("replicas must be an integer".into()))?;
    if replicas == 0 {
        return Err(AdlError::Invalid("replicas must be >= 1".into()));
    }
    let balance_policy = match e.attr("policy") {
        None | Some("round-robin") => BalancePolicy::RoundRobin,
        Some("random") => BalancePolicy::Random,
        Some(other) => {
            return Err(AdlError::Invalid(format!("unknown policy '{other}'")));
        }
    };
    let read_policy = match e.attr("read-policy") {
        None | Some("least-pending") => ReadPolicy::LeastPending,
        Some("round-robin") => ReadPolicy::RoundRobin,
        Some("random") => ReadPolicy::Random,
        Some(other) => {
            return Err(AdlError::Invalid(format!("unknown read-policy '{other}'")));
        }
    };
    Ok(TierSpec {
        kind,
        replicas,
        balance_policy,
        read_policy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
        <j2ee name="rubis">
            <tier kind="application" replicas="2" policy="random"/>
            <tier kind="database" replicas="3" read-policy="round-robin"/>
        </j2ee>
    "#;

    #[test]
    fn parses_a_description() {
        let d = J2eeDescription::from_xml(DOC).unwrap();
        assert_eq!(d.name, "rubis");
        assert_eq!(d.application.replicas, 2);
        assert_eq!(d.application.balance_policy, BalancePolicy::Random);
        assert_eq!(d.database.replicas, 3);
        assert_eq!(d.database.read_policy, ReadPolicy::RoundRobin);
        assert!(d.web.is_none());
        assert_eq!(d.initial_nodes(), 2 + 1 + 3 + 1);
    }

    #[test]
    fn xml_roundtrip() {
        let d = J2eeDescription::from_xml(DOC).unwrap();
        let d2 = J2eeDescription::from_xml(&d.to_xml()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn paper_initial_matches_the_evaluation() {
        let d = J2eeDescription::paper_initial();
        assert_eq!(d.application.replicas, 1);
        assert_eq!(d.database.replicas, 1);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(J2eeDescription::from_xml("<x/>").is_err());
        assert!(J2eeDescription::from_xml("<j2ee name='a'/>").is_err());
        assert!(J2eeDescription::from_xml(
            "<j2ee name='a'><tier kind='application'/><tier kind='application'/><tier kind='database'/></j2ee>"
        )
        .is_err());
        assert!(J2eeDescription::from_xml(
            "<j2ee name='a'><tier kind='application' replicas='0'/><tier kind='database'/></j2ee>"
        )
        .is_err());
        assert!(J2eeDescription::from_xml(
            "<j2ee name='a'><tier kind='application' policy='weird'/><tier kind='database'/></j2ee>"
        )
        .is_err());
    }
}
