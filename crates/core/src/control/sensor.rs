//! Sensors (paper §3.4): "Sensors are responsible for the detection of the
//! occurrence of a particular event … sensors must monitor and aggregate
//! low-level information such as CPU/memory usage, or higher-level
//! information such as client response times."
//!
//! The CPU sensor reproduces §5.2 exactly: it "gathers the CPU usage of
//! these nodes every second and computes a spatial (over these nodes) and
//! temporal (over the last period) average CPU usage value".

use jade_sim::{MovingAverage, SimDuration, SimTime};

/// A sensor turning raw samples into a smoothed load indicator.
pub trait Sensor {
    /// Feeds the spatial average measured at `t`; returns the smoothed
    /// indicator, or `None` while the window is still empty.
    fn observe(&mut self, t: SimTime, spatial_avg: f64) -> Option<f64>;

    /// Current smoothed value without feeding a new sample.
    fn value(&self) -> Option<f64>;
}

/// CPU-usage sensor with a temporal moving average.
#[derive(Debug, Clone)]
pub struct CpuAvgSensor {
    ma: MovingAverage,
}

impl CpuAvgSensor {
    /// Creates a sensor with the given smoothing window (the paper uses
    /// 60 s for the application tier and 90 s for the database tier).
    pub fn new(window: SimDuration) -> Self {
        CpuAvgSensor {
            ma: MovingAverage::new(window),
        }
    }

    /// Like [`CpuAvgSensor::new`], but sized for samples arriving every
    /// `period` so the backing ring never grows in steady state.
    pub fn with_period(window: SimDuration, period: SimDuration) -> Self {
        CpuAvgSensor {
            ma: MovingAverage::with_period(window, period),
        }
    }

    /// The smoothing window.
    pub fn window(&self) -> SimDuration {
        self.ma.window()
    }
}

impl Sensor for CpuAvgSensor {
    fn observe(&mut self, t: SimTime, spatial_avg: f64) -> Option<f64> {
        self.ma.record(t, spatial_avg.clamp(0.0, 1.0));
        self.ma.value()
    }

    fn value(&self) -> Option<f64> {
        self.ma.value()
    }
}

/// Response-time sensor (paper §4.2: "a sensor specific to optimization
/// may provide an estimator of the response-time to client requests").
/// Smooths window-mean latencies the same way.
#[derive(Debug, Clone)]
pub struct LatencySensor {
    ma: MovingAverage,
    /// Latency (ms) considered saturation; the smoothed output is the
    /// latency normalized by this bound, so thresholds stay in `[0,1]`
    /// like the CPU sensor's.
    pub saturation_ms: f64,
}

impl LatencySensor {
    /// Creates a latency sensor normalizing by `saturation_ms`.
    pub fn new(window: SimDuration, saturation_ms: f64) -> Self {
        assert!(saturation_ms > 0.0);
        LatencySensor {
            ma: MovingAverage::new(window),
            saturation_ms,
        }
    }

    /// Like [`LatencySensor::new`], but sized for samples arriving every
    /// `period` so the backing ring never grows in steady state.
    pub fn with_period(window: SimDuration, saturation_ms: f64, period: SimDuration) -> Self {
        assert!(saturation_ms > 0.0);
        LatencySensor {
            ma: MovingAverage::with_period(window, period),
            saturation_ms,
        }
    }
}

impl Sensor for LatencySensor {
    fn observe(&mut self, t: SimTime, mean_latency_ms: f64) -> Option<f64> {
        self.ma
            .record(t, (mean_latency_ms / self.saturation_ms).max(0.0));
        self.ma.value()
    }

    fn value(&self) -> Option<f64> {
        self.ma.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn cpu_sensor_smooths_spikes() {
        let mut s = CpuAvgSensor::new(SimDuration::from_secs(60));
        for i in 0..59 {
            s.observe(t(i), 0.2);
        }
        // One artifact spike.
        let v = s.observe(t(59), 1.0).unwrap();
        assert!(v < 0.25, "single spike must be smoothed away, got {v}");
    }

    #[test]
    fn cpu_sensor_tracks_sustained_load() {
        let mut s = CpuAvgSensor::new(SimDuration::from_secs(60));
        for i in 0..200 {
            s.observe(t(i), 0.9);
        }
        assert!((s.value().unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn cpu_sensor_clamps_inputs() {
        let mut s = CpuAvgSensor::new(SimDuration::from_secs(10));
        let v = s.observe(t(0), 3.7).unwrap();
        assert!(v <= 1.0);
    }

    #[test]
    fn latency_sensor_normalizes() {
        let mut s = LatencySensor::new(SimDuration::from_secs(30), 1000.0);
        let v = s.observe(t(0), 500.0).unwrap();
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_eviction_forgets_old_load() {
        let mut s = CpuAvgSensor::new(SimDuration::from_secs(10));
        s.observe(t(0), 1.0);
        for i in 20..30 {
            s.observe(t(i), 0.1);
        }
        assert!((s.value().unwrap() - 0.1).abs() < 1e-9);
    }
}
