//! The control-loop framework (paper §3.4): autonomic managers are
//! feedback loops built from three kinds of components — sensors,
//! analysis/decision reactors, and actuators. Sensors and reactors are
//! pure logic and live here; actuators perform multi-step reconfiguration
//! workflows against the managed system and are implemented by the
//! simulation application ([`crate::system`]).

pub mod reactor;
pub mod sensor;

pub use reactor::{AdaptiveThresholds, Decision, InhibitionWindow, ThresholdReactor};
pub use sensor::{CpuAvgSensor, LatencySensor, Sensor};
