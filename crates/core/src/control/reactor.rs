//! Reactors (paper §3.4): "Analysis/decision components (or reactors)
//! represent the actual reconfiguration algorithm … the decision logic
//! implemented to trigger such a reconfiguration is based on thresholds on
//! CPU loads provided by sensors" (§4.1).
//!
//! "The objective is to keep the CPU usage value between these two
//! thresholds. … if this value is over the maximum threshold … the control
//! loop deploys a new replica on a free node. … if this value is under the
//! minimum threshold … the control loop removes one node" (§5.2).

use jade_sim::{SimDuration, SimTime};

/// A reconfiguration decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Load within the optimal region: no action.
    Stay,
    /// Deploy one more replica.
    ScaleUp,
    /// Remove one replica.
    ScaleDown,
}

/// Threshold-based decision logic with replica bounds.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdReactor {
    /// Upper CPU threshold triggering replica addition.
    pub max_threshold: f64,
    /// Lower CPU threshold triggering replica removal.
    pub min_threshold: f64,
    /// Never scale below this replica count.
    pub min_replicas: usize,
    /// Never scale above this replica count.
    pub max_replicas: usize,
}

impl ThresholdReactor {
    /// Creates a reactor; panics on inconsistent thresholds.
    pub fn new(
        min_threshold: f64,
        max_threshold: f64,
        min_replicas: usize,
        max_replicas: usize,
    ) -> Self {
        assert!(
            0.0 <= min_threshold && min_threshold < max_threshold && max_threshold <= 1.0,
            "need 0 <= min < max <= 1"
        );
        assert!(1 <= min_replicas && min_replicas <= max_replicas);
        ThresholdReactor {
            max_threshold,
            min_threshold,
            min_replicas,
            max_replicas,
        }
    }

    /// Decides from the smoothed load and the current replica count.
    pub fn decide(&self, smoothed_load: f64, replicas: usize) -> Decision {
        if smoothed_load > self.max_threshold && replicas < self.max_replicas {
            Decision::ScaleUp
        } else if smoothed_load < self.min_threshold && replicas > self.min_replicas {
            Decision::ScaleDown
        } else {
            Decision::Stay
        }
    }
}

/// Oscillation guard shared by all control loops (paper §5.2): "in order
/// to prevent oscillations, a reconfiguration started by one of the
/// control loops inhibits any new reconfiguration for a short period (one
/// minute)".
#[derive(Debug, Clone, Copy)]
pub struct InhibitionWindow {
    /// Length of the inhibition period.
    pub period: SimDuration,
    last_reconfiguration: Option<SimTime>,
}

impl InhibitionWindow {
    /// Creates an open window with the given period.
    pub fn new(period: SimDuration) -> Self {
        InhibitionWindow {
            period,
            last_reconfiguration: None,
        }
    }

    /// True when a new reconfiguration may start at `t`.
    pub fn permits(&self, t: SimTime) -> bool {
        match self.last_reconfiguration {
            None => true,
            Some(last) => t.since(last) >= self.period,
        }
    }

    /// Records that a reconfiguration started at `t`.
    pub fn note_reconfiguration(&mut self, t: SimTime) {
        self.last_reconfiguration = Some(t);
    }

    /// Time of the last reconfiguration, if any.
    pub fn last(&self) -> Option<SimTime> {
        self.last_reconfiguration
    }
}

/// Adaptive thresholds (paper §7 future work: "improving the
/// self-optimizing algorithm by setting incrementally and dynamically its
/// parameters"). After each scale-up that is quickly followed by a
/// scale-down (a churn event), the band is widened to damp the loop;
/// sustained stability slowly narrows it back toward the configured band.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveThresholds {
    /// The configured (tightest) band.
    pub base: ThresholdReactor,
    /// Current widening applied symmetrically to the band, in load units.
    pub widening: f64,
    /// Widening added per churn event.
    pub step: f64,
    /// Maximum widening.
    pub max_widening: f64,
    /// Last scale direction and time, for churn detection.
    last_action: Option<(Decision, SimTime)>,
    /// Reconfigurations counted as churn when closer than this.
    pub churn_window: SimDuration,
}

impl AdaptiveThresholds {
    /// Wraps a base reactor.
    pub fn new(base: ThresholdReactor) -> Self {
        AdaptiveThresholds {
            base,
            widening: 0.0,
            step: 0.05,
            max_widening: 0.2,
            last_action: None,
            churn_window: SimDuration::from_secs(300),
        }
    }

    /// The effective reactor with the current widening applied.
    pub fn effective(&self) -> ThresholdReactor {
        ThresholdReactor {
            max_threshold: (self.base.max_threshold + self.widening).min(0.98),
            min_threshold: (self.base.min_threshold - self.widening).max(0.02),
            ..self.base
        }
    }

    /// Decides from the current (possibly widened) band. Pure — call
    /// [`AdaptiveThresholds::note_executed`] when the reconfiguration is
    /// actually carried out, so that decisions blocked by the inhibition
    /// window do not pollute the churn statistics.
    pub fn decide(&self, smoothed_load: f64, replicas: usize) -> Decision {
        self.effective().decide(smoothed_load, replicas)
    }

    /// Learns from an *executed* reconfiguration: a quick reversal widens
    /// the band; calm same-direction actions slowly narrow it back.
    pub fn note_executed(&mut self, d: Decision, t: SimTime) {
        if d == Decision::Stay {
            return;
        }
        if let Some((prev, when)) = self.last_action {
            let reversal = (prev == Decision::ScaleUp && d == Decision::ScaleDown)
                || (prev == Decision::ScaleDown && d == Decision::ScaleUp);
            if reversal && t.since(when) < self.churn_window {
                self.widening = (self.widening + self.step).min(self.max_widening);
            } else {
                self.widening = (self.widening - self.step / 2.0).max(0.0);
            }
        }
        self.last_action = Some((d, t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn reactor() -> ThresholdReactor {
        ThresholdReactor::new(0.3, 0.75, 1, 4)
    }

    #[test]
    fn keeps_load_in_the_optimal_region() {
        let r = reactor();
        assert_eq!(r.decide(0.5, 2), Decision::Stay);
        assert_eq!(r.decide(0.8, 2), Decision::ScaleUp);
        assert_eq!(r.decide(0.1, 2), Decision::ScaleDown);
    }

    #[test]
    fn respects_replica_bounds() {
        let r = reactor();
        assert_eq!(r.decide(0.9, 4), Decision::Stay, "at max replicas");
        assert_eq!(r.decide(0.05, 1), Decision::Stay, "at min replicas");
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_thresholds() {
        ThresholdReactor::new(0.8, 0.3, 1, 4);
    }

    #[test]
    fn inhibition_blocks_for_one_period() {
        let mut w = InhibitionWindow::new(SimDuration::from_secs(60));
        assert!(w.permits(t(0)));
        w.note_reconfiguration(t(10));
        assert!(!w.permits(t(30)));
        assert!(!w.permits(t(69)));
        assert!(w.permits(t(70)));
    }

    #[test]
    fn adaptive_widens_on_churn_and_narrows_when_calm() {
        let mut a = AdaptiveThresholds::new(reactor());
        // Scale up then immediately down: churn → widen.
        assert_eq!(a.decide(0.9, 2), Decision::ScaleUp);
        a.note_executed(Decision::ScaleUp, t(0));
        assert_eq!(a.decide(0.1, 3), Decision::ScaleDown);
        a.note_executed(Decision::ScaleDown, t(30));
        assert!(a.widening > 0.0);
        let widened = a.effective();
        assert!(widened.max_threshold > 0.75);
        assert!(widened.min_threshold < 0.3);
        // Calm, same-direction actions narrow again.
        a.note_executed(Decision::ScaleUp, t(1000));
        a.note_executed(Decision::ScaleUp, t(2000));
        assert!(a.widening < 0.05 + 1e-9);
    }

    #[test]
    fn adaptive_ignores_blocked_decisions() {
        let mut a = AdaptiveThresholds::new(reactor());
        a.note_executed(Decision::ScaleUp, t(0));
        // Many blocked (never-executed) decisions change nothing.
        for _ in 0..100 {
            let _ = a.decide(0.9, 2);
        }
        assert_eq!(a.widening, 0.0);
        // The eventual executed reversal still widens.
        a.note_executed(Decision::ScaleDown, t(50));
        assert!(a.widening > 0.0);
    }
}
