//! Experiment and manager configuration.
//!
//! Defaults reproduce the paper's §5.2 setup: thresholds "determined
//! experimentally through specific benchmarks", a 60 s moving average for
//! the application tier and 90 s for the database tier, a one-second
//! control-loop period and a one-minute inhibition window.

use crate::adl::J2eeDescription;
use jade_cluster::NodeSpec;
use jade_rubis::{DatasetSpec, WorkloadRamp, DEFAULT_THINK_TIME};
use jade_sim::{EfficiencyCurve, SimDuration};

/// How the emulated-client population is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// One `EmulatedClient` object, RNG stream and pending think timer
    /// per session — exact per-session trajectories, fine at the paper's
    /// 500 clients.
    PerClient,
    /// Idle sessions collapsed to per-navigation-state counts
    /// (`jade_rubis::ClientPool`): each tick draws how many sessions
    /// finish thinking from the binomial implied by the exponential
    /// think time's memorylessness, and a session only materializes
    /// per-request state at dispatch. Scales to millions of clients.
    Aggregate {
        /// Issuance-tick period (the binomial sampling quantum). Think
        /// completions within a tick get a uniform dispatch offset, so
        /// smaller ticks trade event count for arrival smoothness.
        tick: SimDuration,
    },
}

/// Configuration of one tier's self-optimization loop.
#[derive(Debug, Clone, Copy)]
pub struct TierLoopConfig {
    /// Temporal smoothing window of the CPU sensor.
    pub window: SimDuration,
    /// Minimum CPU threshold (scale down below).
    pub min_threshold: f64,
    /// Maximum CPU threshold (scale up above).
    pub max_threshold: f64,
    /// Replica bounds.
    pub min_replicas: usize,
    /// Upper replica bound (limited by the node pool in any case).
    pub max_replicas: usize,
}

/// Jade's own knobs.
#[derive(Debug, Clone, Copy)]
pub struct JadeConfig {
    /// Master switch: when false the system runs unmanaged (the paper's
    /// "without Jade" baseline) — probes still record metrics but no
    /// reactor fires and no management daemon consumes resources.
    pub managed: bool,
    /// Control-loop / probe period ("the control loop execution is
    /// realized every second", §5.2).
    pub probe_period: SimDuration,
    /// CPU consumed by the management daemon on every managed node, per
    /// probe period (intrusivity, Table 1).
    pub daemon_demand: SimDuration,
    /// Global inhibition window after any reconfiguration.
    pub inhibition: SimDuration,
    /// Application-tier loop.
    pub app_loop: TierLoopConfig,
    /// Database-tier loop.
    pub db_loop: TierLoopConfig,
    /// Enable the self-recovery manager.
    pub self_repair: bool,
    /// How long a node's heartbeat must be missing before its servers are
    /// declared failed. Process-level failures on a live node are
    /// reported by the local daemon within one probe period.
    pub failure_timeout: SimDuration,
    /// Use adaptive thresholds (paper §7 extension).
    pub adaptive: bool,
    /// Drive the control loops with the client response-time estimator
    /// instead of CPU usage (paper §4.2's alternative sensor). The
    /// smoothed input becomes `mean latency / latency_saturation_ms`,
    /// compared against the same thresholds.
    pub latency_driver: bool,
    /// Latency considered saturation when `latency_driver` is on, ms.
    pub latency_saturation_ms: f64,
    /// Route manager decisions through the policy-arbitration manager
    /// (paper §7 future work): serialized execution, repair-over-optimize
    /// priority, conflict coalescing.
    pub arbitration: bool,
}

impl Default for JadeConfig {
    fn default() -> Self {
        JadeConfig {
            managed: true,
            probe_period: SimDuration::from_secs(1),
            daemon_demand: SimDuration::from_millis(2),
            inhibition: SimDuration::from_secs(60),
            app_loop: TierLoopConfig {
                window: SimDuration::from_secs(60),
                min_threshold: 0.33,
                max_threshold: 0.70,
                min_replicas: 1,
                max_replicas: 4,
            },
            db_loop: TierLoopConfig {
                window: SimDuration::from_secs(90),
                min_threshold: 0.30,
                max_threshold: 0.75,
                min_replicas: 1,
                max_replicas: 4,
            },
            self_repair: false,
            failure_timeout: SimDuration::from_secs(3),
            adaptive: false,
            latency_driver: false,
            latency_saturation_ms: 1000.0,
            arbitration: false,
        }
    }
}

impl JadeConfig {
    /// An unmanaged baseline configuration.
    pub fn unmanaged() -> Self {
        JadeConfig {
            managed: false,
            ..JadeConfig::default()
        }
    }
}

/// Whole-experiment configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Node-pool size (the paper used up to 9 machines).
    pub nodes: usize,
    /// Node hardware.
    pub node_spec: NodeSpec,
    /// OS-resident memory per node, MB.
    pub base_mem_mb: u64,
    /// Initial dataset.
    pub dataset: DatasetSpec,
    /// Client ramp.
    pub ramp: WorkloadRamp,
    /// Mean client think time.
    pub think_time: SimDuration,
    /// Navigate clients through the RUBiS transition-table state machine
    /// instead of the i.i.d. weighted mix. The stationary distribution is
    /// close to the mix, but sessions show realistic page-to-page
    /// correlation (bursts of searches, bid funnels). Takes precedence
    /// over `browsing_mix`.
    pub markov_navigation: bool,
    /// Use RUBiS's read-only *browsing* mix instead of the default
    /// bidding mix (no writes ⇒ the recovery log stays empty and new
    /// database replicas synchronize instantly).
    pub browsing_mix: bool,
    /// Client patience: a request not answered within this span is
    /// abandoned (counted as failed). `None` = infinitely patient clients
    /// (the RUBiS emulator's behaviour, and the paper's).
    pub client_patience: Option<SimDuration>,
    /// Initial architecture.
    pub description: J2eeDescription,
    /// Jade configuration.
    pub jade: JadeConfig,
    /// Statistics window for latency/throughput series.
    pub stats_window: SimDuration,
    /// Grace period between unbinding a replica and stopping it.
    pub drain_grace: SimDuration,
    /// Period of the client-pool adjustment tick.
    pub ramp_tick: SimDuration,
    /// Client-emulation mode (per-client objects vs aggregate counts).
    pub client_mode: ClientMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            seed: 42,
            nodes: 9,
            node_spec: NodeSpec {
                cpu_speed: 1.0,
                memory_mb: 1024,
                // The knee/slope reproduce the unmanaged database's
                // thrashing collapse of Figures 6 and 8.
                curve: EfficiencyCurve::Thrashing {
                    knee: 40,
                    slope: 0.02,
                },
            },
            base_mem_mb: 64,
            dataset: DatasetSpec::small(),
            ramp: WorkloadRamp::paper(),
            think_time: DEFAULT_THINK_TIME,
            markov_navigation: false,
            browsing_mix: false,
            client_patience: None,
            description: J2eeDescription::paper_initial(),
            jade: JadeConfig::default(),
            stats_window: SimDuration::from_secs(10),
            drain_grace: SimDuration::from_secs(5),
            ramp_tick: SimDuration::from_secs(2),
            client_mode: ClientMode::PerClient,
        }
    }
}

impl SystemConfig {
    /// The paper's managed run.
    pub fn paper_managed() -> Self {
        SystemConfig::default()
    }

    /// The paper's unmanaged baseline (same workload, no reconfiguration).
    pub fn paper_unmanaged() -> Self {
        SystemConfig {
            jade: JadeConfig::unmanaged(),
            ..SystemConfig::default()
        }
    }

    /// The Figure 5 scenario scaled to a production-size population: a
    /// 160 k → 1 M → 160 k client ramp driven by the aggregate client
    /// pool, on hardware scaled with the load. The scenario is a
    /// consistent rescale of the paper's run: population ×2000, think
    /// time ×100 (650 s) and node speed ×20, so the offered load *per
    /// unit of CPU speed* matches fig5 at every corresponding ramp
    /// point (the base population loads the initial single Tomcat like
    /// the paper's 80 clients; the million-client peak is the paper's
    /// 500). The ramp and the managers' time constants (smoothing,
    /// inhibition) are compressed ×4 together, which preserves the
    /// detection-lag-to-ramp-rate ratio while keeping the run short
    /// enough to finish in seconds of wall clock.
    pub fn million_clients() -> Self {
        let mut jade = JadeConfig {
            inhibition: SimDuration::from_secs(15),
            ..JadeConfig::default()
        };
        jade.app_loop.window = SimDuration::from_secs(15);
        jade.db_loop.window = SimDuration::from_millis(22_500);
        SystemConfig {
            nodes: 12,
            node_spec: NodeSpec {
                cpu_speed: 20.0,
                memory_mb: 1024,
                curve: EfficiencyCurve::Thrashing {
                    knee: 40,
                    slope: 0.02,
                },
            },
            ramp: WorkloadRamp {
                base_clients: 160_000,
                peak_clients: 1_000_000,
                step_clients: 42_000,
                step_interval: SimDuration::from_secs(15),
                warmup: SimDuration::from_secs(30),
                plateau: SimDuration::from_secs(90),
            },
            think_time: SimDuration::from_secs(650),
            client_mode: ClientMode::Aggregate {
                tick: SimDuration::from_millis(100),
            },
            jade,
            ..SystemConfig::default()
        }
    }

    /// Table 1 intrusivity run at a constant medium workload.
    pub fn intrusivity(managed: bool, clients: u32) -> Self {
        SystemConfig {
            ramp: WorkloadRamp::constant(clients),
            jade: if managed {
                JadeConfig::default()
            } else {
                JadeConfig::unmanaged()
            },
            ..SystemConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SystemConfig::default();
        assert_eq!(c.nodes, 9);
        assert_eq!(c.jade.probe_period, SimDuration::from_secs(1));
        assert_eq!(c.jade.inhibition, SimDuration::from_secs(60));
        assert_eq!(c.jade.app_loop.window, SimDuration::from_secs(60));
        assert_eq!(c.jade.db_loop.window, SimDuration::from_secs(90));
        assert!(c.jade.managed);
        assert!(!SystemConfig::paper_unmanaged().jade.managed);
    }

    #[test]
    fn thresholds_are_a_valid_band() {
        let c = SystemConfig::default();
        for l in [c.jade.app_loop, c.jade.db_loop] {
            assert!(0.0 < l.min_threshold && l.min_threshold < l.max_threshold);
            assert!(l.max_threshold < 1.0);
            assert!(l.min_replicas >= 1);
        }
    }
}
