//! Whole-experiment runner: builds a managed system, drives it for a span
//! of virtual time, and extracts the measurements the paper's figures and
//! tables report.

use crate::config::SystemConfig;
use crate::system::{J2eeApp, ManagedTier, Msg};
use jade_sim::{Addr, Digest, Engine, MetricsHub, SimDuration, SimTime, Tracer};

/// Result of one experiment run.
pub struct ExperimentOutput {
    /// Final application state (stats, architecture, legacy layer).
    pub app: J2eeApp,
    /// All recorded metric series/histograms/counters.
    pub metrics: MetricsHub,
    /// The run's tracer (disabled unless the setup hook installed one).
    pub tracer: Tracer,
    /// Virtual end time of the run.
    pub horizon: SimTime,
    /// Number of engine events processed (simulation cost diagnostics).
    pub events: u64,
}

impl ExperimentOutput {
    /// `(t, value)` pairs of a recorded series, in seconds.
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        self.metrics
            .series(name)
            .map(|s| {
                s.points()
                    .iter()
                    .map(|&(t, v)| (t.as_secs_f64(), v))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Time-weighted mean of a series over `[from, to]` seconds.
    pub fn series_mean(&self, name: &str, from: f64, to: f64) -> f64 {
        self.metrics
            .series(name)
            .and_then(|s| {
                s.time_weighted_mean(
                    SimTime::from_micros((from * 1e6) as u64),
                    SimTime::from_micros((to * 1e6) as u64),
                )
            })
            .unwrap_or(0.0)
    }

    /// Run-wide mean client latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        self.app.stats.overall_mean_latency_ms()
    }

    /// Run-wide throughput, req/s.
    pub fn throughput(&self) -> f64 {
        self.app.stats.overall_throughput(self.horizon)
    }

    /// Table 1 row: `(throughput req/s, response ms, cpu %, mem %)`
    /// averaged over `[from, to]` seconds of the run.
    pub fn intrusivity_row(&self, from: f64, to: f64) -> (f64, f64, f64, f64) {
        let window = self.app.stats.window().as_secs_f64();
        let mut completed = 0u64;
        let mut latency_sum = 0.0;
        for (i, w) in self.app.stats.windows().iter().enumerate() {
            let t = i as f64 * window;
            if t >= from && t < to {
                completed += w.completed;
                latency_sum += w.latency_sum_ms;
            }
        }
        let span = (to - from).max(1e-9);
        let throughput = completed as f64 / span;
        let resp = if completed == 0 {
            0.0
        } else {
            latency_sum / completed as f64
        };
        let cpu = self.series_mean("cpu.all", from, to) * 100.0;
        let mem = self.series_mean("mem.avg", from, to) * 100.0;
        (throughput, resp, cpu, mem)
    }

    /// Replica-count changes of a tier as `(t_seconds, count)` steps.
    pub fn replica_steps(&self, tier: ManagedTier) -> Vec<(f64, f64)> {
        let mut steps = Vec::new();
        let mut last = f64::NAN;
        for (t, v) in self.series(tier.replicas_series()) {
            if v != last {
                steps.push((t, v));
                last = v;
            }
        }
        steps
    }

    /// Maximum replica count a tier reached.
    pub fn max_replicas(&self, tier: ManagedTier) -> usize {
        self.series(tier.replicas_series())
            .iter()
            .map(|&(_, v)| v as usize)
            .max()
            .unwrap_or(0)
    }

    /// Stable digest of the run's observable trajectory: event count,
    /// client statistics, the management journal, and the replica /
    /// client / latency series.
    ///
    /// Two runs of the same configuration must produce the same digest
    /// regardless of wall-clock conditions, how many sibling runs execute
    /// on other threads, or whether a [`Tracer`] was installed (tracing is
    /// observation, not behaviour — so the trace is deliberately *not*
    /// part of the digest).
    pub fn outcome_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_u64(self.events);
        d.write_u64(self.horizon.as_micros());
        d.write_u64(self.app.stats.total_completed());
        d.write_u64(self.app.stats.total_failed());
        for (t, line) in &self.app.reconfig_log {
            d.write_u64(t.as_micros());
            d.write_str(line);
        }
        for name in ["replicas.app", "replicas.db", "clients"] {
            d.write_str(name);
            if let Some(s) = self.metrics.series(name) {
                for &(t, v) in s.points() {
                    d.write_u64(t.as_micros());
                    d.write_f64(v);
                }
            }
        }
        d.write_str("latency");
        for (t, v) in self.app.stats.latency_series() {
            d.write_u64(t.as_micros());
            d.write_f64(v);
        }
        d.finish()
    }
}

/// Stable digest of a configuration (seed included): manifest entries use
/// it to prove which scenario produced which outcome.
pub fn config_digest(cfg: &SystemConfig) -> u64 {
    // `SystemConfig` is plain data with a complete `Debug` rendering; the
    // digest of that rendering changes iff a field changes.
    jade_sim::digest_str(&format!("{cfg:?}"))
}

/// Runs one experiment for `duration` of virtual time.
pub fn run_experiment(cfg: SystemConfig, duration: SimDuration) -> ExperimentOutput {
    run_experiment_with(cfg, duration, |_| {})
}

/// Like [`run_experiment`], but lets the caller schedule extra events —
/// e.g. failure injection (`Msg::CrashNode`) for self-recovery scenarios —
/// before the run starts.
pub fn run_experiment_with(
    cfg: SystemConfig,
    duration: SimDuration,
    setup: impl FnOnce(&mut Engine<J2eeApp>),
) -> ExperimentOutput {
    let seed = cfg.seed;
    let mut engine = Engine::new(J2eeApp::new(cfg), seed);
    engine.schedule(SimTime::ZERO, Addr::ROOT, Msg::Bootstrap);
    setup(&mut engine);
    engine.run_until(SimTime::ZERO + duration);
    let horizon = engine.now();
    let events = engine.events_processed();
    let (app, metrics, tracer) = engine.into_parts_with_trace();
    ExperimentOutput {
        app,
        metrics,
        tracer,
        horizon,
        events,
    }
}

/// Runs the same scenario managed and unmanaged on two threads (the
/// figures 6–9 comparisons), using scoped threads per the repository's
/// parallelism guidelines.
pub fn run_managed_and_unmanaged(
    managed: SystemConfig,
    unmanaged: SystemConfig,
    duration: SimDuration,
) -> (ExperimentOutput, ExperimentOutput) {
    let mut managed_out = None;
    let mut unmanaged_out = None;
    std::thread::scope(|s| {
        s.spawn(|| managed_out = Some(run_experiment(managed, duration)));
        s.spawn(|| unmanaged_out = Some(run_experiment(unmanaged, duration)));
    });
    (
        managed_out.expect("managed run finished"),
        unmanaged_out.expect("unmanaged run finished"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_rubis::WorkloadRamp;

    /// A short managed run at constant medium load: the system must stay
    /// at the initial architecture and serve requests.
    #[test]
    fn steady_medium_load_run() {
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = WorkloadRamp::constant(80);
        cfg.seed = 7;
        let out = run_experiment(cfg, SimDuration::from_secs(300));
        assert!(
            out.app.stats.total_completed() > 1000,
            "clients must be served"
        );
        assert_eq!(out.app.running_replicas(ManagedTier::Application), 1);
        assert_eq!(out.app.running_replicas(ManagedTier::Database), 1);
        // ~12 req/s at 80 clients (Table 1).
        let tp = out.throughput();
        assert!((9.0..=15.0).contains(&tp), "throughput {tp}");
        // Sub-second latencies at medium load.
        assert!(
            out.mean_latency_ms() < 500.0,
            "latency {}",
            out.mean_latency_ms()
        );
    }

    /// Under overload the managed system must add replicas.
    #[test]
    fn overload_triggers_scale_up() {
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = WorkloadRamp::constant(260);
        cfg.seed = 3;
        let out = run_experiment(cfg, SimDuration::from_secs(420));
        assert!(
            out.app.running_replicas(ManagedTier::Database) >= 2,
            "database tier must have scaled up; log: {:?}",
            out.app.reconfig_log
        );
    }
}
