//! Analytic capacity model.
//!
//! The paper sets thresholds "experimentally with some benchmarks"
//! (§4.2) and leaves dynamic parameter-setting as future work (§7). This
//! module provides the closed-form counterpart: a closed-queueing-network
//! estimate of per-tier utilization and the client counts at which the
//! threshold reactor will add or remove replicas. The
//! `capacity_planning` example compares its predictions against the
//! simulated Figure 5 transitions; an integration test pins the
//! agreement.
//!
//! Model: `N` clients cycle think (mean `Z`) → request → response. With
//! the response time small relative to `Z` (the managed regime), the
//! offered rate is `λ(N) ≈ N / (Z + R)`, and a tier with `k` replicas and
//! mean per-request demand `d` runs at utilization `ρ = λ d / k`.
//! Response time per tier is estimated by the processor-sharing M/M/1
//! formula `d / (1 − ρ)`.

/// Per-tier mean demands and client behaviour.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Mean think time, seconds.
    pub think_time_s: f64,
    /// Mean application-tier CPU demand per interaction, seconds.
    pub servlet_demand_s: f64,
    /// Mean database-tier CPU demand per interaction, seconds.
    pub db_demand_s: f64,
}

/// A predicted reconfiguration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTransition {
    /// Emulated clients at which the transition triggers.
    pub clients: f64,
    /// `true` for the database tier, `false` for the application tier.
    pub database: bool,
    /// Replica count after the transition.
    pub replicas: usize,
}

impl CapacityModel {
    /// Builds the model from the RUBiS workload calibration
    /// ([`jade_rubis::interactions::mean_demands`]) and a think time.
    pub fn from_workload(think_time_s: f64) -> Self {
        let (servlet_ms, db_ms) = jade_rubis::interactions::mean_demands();
        CapacityModel {
            think_time_s,
            servlet_demand_s: servlet_ms / 1e3,
            db_demand_s: db_ms / 1e3,
        }
    }

    /// Estimated steady response time with the given replica counts,
    /// seconds (PS approximation per tier, capped to avoid the
    /// singularity at saturation).
    pub fn response_time_s(&self, clients: f64, app_replicas: usize, db_replicas: usize) -> f64 {
        // Fixed-point iteration: R depends on λ which depends on R.
        let mut r = self.servlet_demand_s + self.db_demand_s;
        for _ in 0..50 {
            let lambda = clients / (self.think_time_s + r);
            let rho_app = (lambda * self.servlet_demand_s / app_replicas as f64).min(0.999);
            let rho_db = (lambda * self.db_demand_s / db_replicas as f64).min(0.999);
            let r_new = self.servlet_demand_s / (1.0 - rho_app) + self.db_demand_s / (1.0 - rho_db);
            r = 0.5 * r + 0.5 * r_new;
        }
        r
    }

    /// Offered request rate with the given configuration, req/s.
    pub fn request_rate(&self, clients: f64, app_replicas: usize, db_replicas: usize) -> f64 {
        clients / (self.think_time_s + self.response_time_s(clients, app_replicas, db_replicas))
    }

    /// Utilization of a tier with `k` replicas at `clients`.
    pub fn utilization(
        &self,
        clients: f64,
        demand_s: f64,
        k: usize,
        app_replicas: usize,
        db_replicas: usize,
    ) -> f64 {
        self.request_rate(clients, app_replicas, db_replicas) * demand_s / k as f64
    }

    /// Client count at which a tier with `k` replicas crosses a
    /// utilization `threshold` (ignoring response-time inflation — the
    /// regime just before a scale-up, where R ≪ Z).
    pub fn clients_at_threshold(&self, demand_s: f64, k: usize, threshold: f64) -> f64 {
        threshold * k as f64 * self.think_time_s / demand_s
    }

    /// Predicted scale-up sequence for a rising ramp from `base` to
    /// `peak` clients, given each tier's max threshold and replica cap.
    pub fn predict_ramp_up(
        &self,
        base: f64,
        peak: f64,
        db_max_threshold: f64,
        app_max_threshold: f64,
        max_replicas: usize,
    ) -> Vec<PredictedTransition> {
        let mut out = Vec::new();
        for k in 1..max_replicas {
            let at = self.clients_at_threshold(self.db_demand_s, k, db_max_threshold);
            if at > base && at <= peak {
                out.push(PredictedTransition {
                    clients: at,
                    database: true,
                    replicas: k + 1,
                });
            }
        }
        for k in 1..max_replicas {
            let at = self.clients_at_threshold(self.servlet_demand_s, k, app_max_threshold);
            if at > base && at <= peak {
                out.push(PredictedTransition {
                    clients: at,
                    database: false,
                    replicas: k + 1,
                });
            }
        }
        out.sort_by(|a, b| a.clients.total_cmp(&b.clients));
        out
    }

    /// Replicas needed to keep a tier at or under `threshold` at
    /// `clients` (the planner's sizing answer).
    pub fn replicas_needed(&self, clients: f64, demand_s: f64, threshold: f64) -> usize {
        let lambda = clients / self.think_time_s; // conservative (R ≈ 0)
        ((lambda * demand_s / threshold).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapacityModel {
        CapacityModel::from_workload(6.5)
    }

    #[test]
    fn table1_operating_point() {
        let m = model();
        // 80 clients on 1+1 replicas: ~12 req/s, sub-100 ms responses.
        let rate = m.request_rate(80.0, 1, 1);
        assert!((11.0..13.0).contains(&rate), "rate {rate}");
        let r = m.response_time_s(80.0, 1, 1);
        assert!(r < 0.15, "response {r}");
    }

    #[test]
    fn predicts_the_figure5_order() {
        let m = model();
        let transitions = m.predict_ramp_up(80.0, 500.0, 0.75, 0.70, 4);
        // Database scales twice before the application tier scales once.
        let kinds: Vec<(bool, usize)> = transitions
            .iter()
            .map(|t| (t.database, t.replicas))
            .collect();
        assert_eq!(
            kinds,
            vec![(true, 2), (true, 3), (false, 2)],
            "{transitions:?}"
        );
        // First DB transition in the paper's neighbourhood (~180 clients).
        assert!(
            (140.0..260.0).contains(&transitions[0].clients),
            "{transitions:?}"
        );
        // App transition near 420 clients.
        assert!(
            (350.0..500.0).contains(&transitions[2].clients),
            "{transitions:?}"
        );
    }

    #[test]
    fn sizing_answers_are_monotone() {
        let m = model();
        let mut last = 0;
        for clients in [50.0, 150.0, 300.0, 500.0, 800.0] {
            let k = m.replicas_needed(clients, m.db_demand_s, 0.75);
            assert!(k >= last);
            last = k;
        }
        assert!(last >= 3, "500+ clients need several backends");
    }

    #[test]
    fn saturation_inflates_response_time() {
        let m = model();
        let relaxed = m.response_time_s(100.0, 1, 1);
        let saturated = m.response_time_s(400.0, 1, 1);
        assert!(saturated > 5.0 * relaxed, "{relaxed} vs {saturated}");
        // Adding backends deflates it again.
        let provisioned = m.response_time_s(400.0, 2, 3);
        assert!(provisioned < saturated / 3.0);
    }
}
