//! # jade — middleware for autonomic management of clustered applications
//!
//! Rust reproduction of *"Autonomic Management of Clustered Applications"*
//! (Bouchenak, De Palma, Hagimont, Taton — IEEE CLUSTER 2006): **Jade**, a
//! middleware that wraps legacy software in components with a uniform
//! management interface and closes feedback control loops over them.
//!
//! The crate assembles the substrates into the paper's system:
//!
//! * [`adl`] — the XML architecture description language and its
//!   interpretation (paper §3.3),
//! * [`control`] — sensors and threshold reactors (paper §3.4, §4.1),
//! * [`system`] — the managed J2EE system as a deterministic
//!   discrete-event application: legacy layer + management layer +
//!   RUBiS clients + autonomic managers,
//! * [`config`] — experiment/manager configuration with the paper's
//!   calibrated defaults,
//! * [`experiment`] — run harness extracting the measurements of the
//!   paper's Figures 5–9 and Table 1.
//!
//! ## Quick start
//!
//! ```
//! use jade::config::SystemConfig;
//! use jade::experiment::run_experiment;
//! use jade::system::ManagedTier;
//! use jade_sim::SimDuration;
//! use jade_rubis::WorkloadRamp;
//!
//! let mut cfg = SystemConfig::paper_managed();
//! cfg.ramp = WorkloadRamp::constant(80);
//! let out = run_experiment(cfg, SimDuration::from_secs(120));
//! assert_eq!(out.app.running_replicas(ManagedTier::Application), 1);
//! assert!(out.app.stats.total_completed() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adl;
pub mod arbitration;
pub mod config;
pub mod control;
pub mod experiment;
pub mod planner;
pub mod system;

pub use adl::{AdlError, J2eeDescription, TierKind, TierSpec};
pub use config::{ClientMode, JadeConfig, SystemConfig, TierLoopConfig};
pub use control::{
    CpuAvgSensor, Decision, InhibitionWindow, LatencySensor, Sensor, ThresholdReactor,
};
pub use experiment::{run_experiment, run_managed_and_unmanaged, ExperimentOutput};
pub use system::{J2eeApp, ManagedTier, Msg, TierManager};
