//! Fixture-driven tests for the analyzer: one bad and one good fixture
//! per rule, asserting the exact `(line, rule)` of every diagnostic, plus
//! suppression semantics and binary exit codes.

use jade_audit::check_files;
use jade_audit::rules::{Config, Rule};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Diagnostics for one fixture as `(line, rule)` pairs, asserting every
/// diagnostic points at the fixture file itself.
fn diags(name: &str) -> Vec<(u32, Rule)> {
    let out = check_files(&[fixture(name)], &Config::default());
    out.iter().for_each(|d| {
        assert!(
            d.file.ends_with(name),
            "diagnostic for wrong file: {} (expected {name})",
            d.file
        );
    });
    out.into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn nondet_time_fixtures() {
    assert_eq!(
        diags("bad_nondet_time.rs"),
        vec![(5, Rule::NondetTime), (6, Rule::NondetTime)]
    );
    assert_eq!(diags("good_nondet_time.rs"), vec![]);
}

#[test]
fn nondet_rand_fixtures() {
    assert_eq!(
        diags("bad_nondet_rand.rs"),
        vec![(3, Rule::NondetRand), (8, Rule::NondetRand)]
    );
    assert_eq!(diags("good_nondet_rand.rs"), vec![]);
}

#[test]
fn nondet_env_fixtures() {
    assert_eq!(
        diags("bad_nondet_env.rs"),
        vec![(3, Rule::NondetEnv), (4, Rule::NondetEnv)]
    );
    assert_eq!(diags("good_nondet_env.rs"), vec![]);
}

#[test]
fn nondet_hasher_fixtures() {
    assert_eq!(
        diags("bad_nondet_hasher.rs"),
        vec![
            (5, Rule::NondetHasher),
            (8, Rule::NondetHasher),
            (9, Rule::NondetHasher)
        ]
    );
    assert_eq!(diags("good_nondet_hasher.rs"), vec![]);
}

#[test]
fn unordered_iter_fixtures() {
    assert_eq!(
        diags("bad_unordered_iter.rs"),
        vec![(11, Rule::UnorderedIter)]
    );
    assert_eq!(diags("good_unordered_iter.rs"), vec![]);
}

#[test]
fn packing_cast_fixtures() {
    assert_eq!(
        diags("bad_packing_cast.rs"),
        vec![(5, Rule::PackingCast), (9, Rule::PackingCast)]
    );
    assert_eq!(diags("good_packing_cast.rs"), vec![]);
}

#[test]
fn hot_panic_fixtures() {
    assert_eq!(
        diags("bad_hot_panic.rs"),
        vec![(9, Rule::HotPanic), (14, Rule::HotPanic)]
    );
    assert_eq!(diags("good_hot_panic.rs"), vec![]);
}

#[test]
fn hot_alloc_fixtures() {
    assert_eq!(
        diags("bad_hot_alloc.rs"),
        vec![
            (9, Rule::HotAlloc),
            (11, Rule::HotAlloc),
            (18, Rule::HotAlloc)
        ]
    );
    assert_eq!(diags("good_hot_alloc.rs"), vec![]);
}

#[test]
fn float_fold_fixtures() {
    assert_eq!(
        diags("bad_float_fold.rs"),
        vec![(10, Rule::FloatFold), (14, Rule::FloatFold)]
    );
    assert_eq!(diags("good_float_fold.rs"), vec![]);
}

#[test]
fn unbounded_growth_fixtures() {
    assert_eq!(
        diags("bad_unbounded_growth.rs"),
        vec![(10, Rule::UnboundedGrowth), (11, Rule::UnboundedGrowth)]
    );
    assert_eq!(diags("good_unbounded_growth.rs"), vec![]);
}

#[test]
fn suppression_fixtures() {
    // Reason-less, unknown-rule and unrecognized directives are each a
    // bad-suppression violation at the directive's own line.
    assert_eq!(
        diags("bad_suppression.rs"),
        vec![
            (3, Rule::BadSuppression),
            (8, Rule::BadSuppression),
            (13, Rule::BadSuppression)
        ]
    );
    // Reasoned suppressions (preceding-line and same-line forms) silence
    // real violations entirely.
    assert_eq!(diags("good_suppression.rs"), vec![]);
}

#[test]
fn suppression_binds_to_the_item_through_attributes() {
    // A suppression directly above `#[jade_hot]` (or above the signature,
    // below a `hot` marker) covers the item's whole body, not just the
    // next line.
    assert_eq!(diags("good_suppression_item.rs"), vec![]);
}

#[test]
fn file_scope_allow_covers_the_whole_file() {
    assert_eq!(diags("good_suppression_file.rs"), vec![]);
}

#[test]
fn lexer_corners_produce_no_false_positives() {
    // Raw strings, nested block comments and lifetime ticks carry text
    // that would trip nondet-time/nondet-rand if it leaked into tokens.
    assert_eq!(diags("good_lexer_corners.rs"), vec![]);
}

#[test]
fn disable_switches_rules_off() {
    let mut cfg = Config::default();
    cfg.disabled.insert(Rule::NondetTime);
    let out = check_files(&[fixture("bad_nondet_time.rs")], &cfg);
    assert!(out.is_empty(), "disabled rule must not fire: {out:?}");
}

#[test]
fn plan_module_is_inside_the_digest_scope() {
    use jade_audit::rules::{rule_in_scope, ScopeMode};
    // The compiled-plan layer feeds outcome digests exactly like the
    // statement engine it shadows: workspace scoping must hold the plan
    // module (and the storage/emission files it plugs into) to the
    // hasher, iteration-order, and packing-cast rules.
    // The streamed observation plane (ring sensors, cursor-cached
    // series, dense probe tick) feeds the same digests: its modules stay
    // in scope too.
    for path in [
        "crates/tiers/src/plan.rs",
        "crates/tiers/src/storage.rs",
        "crates/rubis/src/interactions.rs",
        "crates/sim/src/metrics.rs",
        "crates/core/src/system/manage.rs",
    ] {
        for rule in [Rule::NondetHasher, Rule::UnorderedIter, Rule::PackingCast] {
            assert!(
                rule_in_scope(rule, path, ScopeMode::Workspace),
                "{path} must be covered by {} in workspace scope",
                rule.id()
            );
        }
    }
    // request.rs is a hand-audited packing module: the cast exemption is
    // surgical — it must not leak onto the digest rules there, nor onto
    // the plan module at all.
    let req = "crates/tiers/src/request.rs";
    assert!(!rule_in_scope(Rule::PackingCast, req, ScopeMode::Workspace));
    assert!(rule_in_scope(Rule::NondetHasher, req, ScopeMode::Workspace));
    assert!(rule_in_scope(
        Rule::UnorderedIter,
        req,
        ScopeMode::Workspace
    ));
}

#[test]
fn every_rule_id_round_trips() {
    for r in jade_audit::rules::ALL_RULES {
        assert_eq!(Rule::parse(r.id()), Some(r));
    }
    assert_eq!(Rule::parse("no-such-rule"), None);
}

const BAD_FIXTURES: [&str; 11] = [
    "bad_nondet_time.rs",
    "bad_nondet_rand.rs",
    "bad_nondet_env.rs",
    "bad_nondet_hasher.rs",
    "bad_unordered_iter.rs",
    "bad_packing_cast.rs",
    "bad_hot_panic.rs",
    "bad_hot_alloc.rs",
    "bad_float_fold.rs",
    "bad_unbounded_growth.rs",
    "bad_suppression.rs",
];

const GOOD_FIXTURES: [&str; 12] = [
    "good_nondet_time.rs",
    "good_nondet_rand.rs",
    "good_nondet_env.rs",
    "good_nondet_hasher.rs",
    "good_unordered_iter.rs",
    "good_packing_cast.rs",
    "good_hot_panic.rs",
    "good_hot_alloc.rs",
    "good_float_fold.rs",
    "good_unbounded_growth.rs",
    "good_suppression.rs",
    "good_suppression_item.rs",
];

#[test]
fn check_exits_nonzero_on_each_bad_fixture() {
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    for bad in BAD_FIXTURES {
        let status = Command::new(exe)
            .arg("check")
            .arg(fixture(bad))
            .status()
            .expect("spawn jade-audit");
        assert!(!status.success(), "`check {bad}` must exit nonzero");
    }
}

#[test]
fn check_exits_zero_on_each_good_fixture() {
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    for good in GOOD_FIXTURES {
        let status = Command::new(exe)
            .arg("check")
            .arg(fixture(good))
            .status()
            .expect("spawn jade-audit");
        assert!(status.success(), "`check {good}` must exit zero");
    }
}

#[test]
fn fix_list_exits_zero_and_emits_json() {
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    let out = Command::new(exe)
        .arg("fix-list")
        .arg(fixture("bad_nondet_time.rs"))
        .output()
        .expect("spawn jade-audit");
    assert!(out.status.success(), "fix-list always exits zero");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.contains("\"rule\": \"nondet-time\""));
    assert!(stdout.contains("\"line\": 5"));
}

#[test]
fn list_rules_covers_the_interprocedural_rules() {
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    let out = Command::new(exe)
        .arg("list-rules")
        .output()
        .expect("spawn jade-audit");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for id in ["hot-alloc", "float-fold", "unbounded-growth", "hot-panic"] {
        assert!(stdout.contains(id), "list-rules must mention {id}");
    }
}

/// Property: interprocedural hotness is a *strict* superset of textual
/// marking on the real workspace. Every `#[jade_hot]` root is in the
/// reachable set, and the closure extends well beyond the annotated
/// bodies — if this ever collapses to equality, call-graph propagation
/// has silently stopped resolving calls.
#[test]
fn hot_reachability_strictly_extends_textual_marking() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files = jade_audit::load_workspace(&root);
    let report = jade_audit::hot_report(&files);
    assert!(
        !report.roots.is_empty(),
        "the workspace must declare hot roots"
    );
    assert!(
        report.total_reachable > report.roots.len(),
        "hot closure ({}) must strictly exceed the textual roots ({})",
        report.total_reachable,
        report.roots.len()
    );
    // The roots live in sim (engine step/run_until) and core (handle,
    // on_db_dispatch); propagation must cross crate boundaries into the
    // tiers they drive.
    for unit in ["crates/sim", "crates/core", "crates/tiers"] {
        let n = report
            .reachable_by_unit
            .iter()
            .find(|(u, _)| u == unit)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(n > 0, "{unit} must contain hot-reachable functions");
    }
}

/// The committed hot-root snapshot (`crates/audit/hot_roots.json`, which
/// CI diffs against a fresh `inventory --format json`) must match the
/// live workspace — a drifted snapshot means a hot entry point was added
/// or moved without updating the audit contract.
#[test]
fn hot_roots_snapshot_is_current() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    let out = Command::new(exe)
        .arg("inventory")
        .arg("--root")
        .arg(&root)
        .arg("--format")
        .arg("json")
        .output()
        .expect("spawn jade-audit");
    assert!(out.status.success());
    let live = String::from_utf8(out.stdout).expect("utf8");
    let committed =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("hot_roots.json"))
            .expect("crates/audit/hot_roots.json must be committed");
    assert_eq!(
        live.trim(),
        committed.trim(),
        "hot_roots.json is stale: regenerate with \
         `jade-audit inventory --format json > crates/audit/hot_roots.json`"
    );
}

#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let exe = env!("CARGO_BIN_EXE_jade-audit");
    let out = Command::new(exe)
        .arg("check")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn jade-audit");
    assert!(
        out.status.success(),
        "workspace must stay audit-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
