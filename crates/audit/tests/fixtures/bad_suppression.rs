// Fixture: suppressions must carry reasons and name known rules.
pub fn a() -> u64 {
    // jade-audit: allow(nondet-time)
    0
}

pub fn b() -> u64 {
    // jade-audit: allow(made-up-rule): some reason
    0
}

pub fn c() -> u64 {
    // jade-audit: frobnicate
    0
}
