// Fixture: virtual time and string/comment mentions are fine.
// A comment saying Instant::now() is not a violation.
pub fn virtual_now(clock_ns: u64) -> u64 {
    let label = "Instant::now() belongs to the bench crate only";
    let _ = label;
    clock_ns
}
