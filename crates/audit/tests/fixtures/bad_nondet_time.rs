// Fixture: wall-clock reads must be flagged.
use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, u64) {
    let i = Instant::now();
    let s = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (i, s)
}
