// Fixture: float accumulation over hash-order iteration must be flagged.
use jade_sim::DetHashMap;

pub struct Loads {
    weights: DetHashMap<u32, f64>,
}

impl Loads {
    pub fn total(&self) -> f64 {
        self.weights.values().sum::<f64>()
    }

    pub fn sum_typed(&self) -> f64 {
        let sum: f64 = self.weights.values().sum();
        sum
    }
}
