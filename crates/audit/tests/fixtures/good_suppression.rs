// Fixture: a reasoned suppression silences the diagnostic, in both the
// preceding-line and same-line forms.
pub fn seed() -> u64 {
    // jade-audit: allow(nondet-rand): fixture demonstrates a justified escape
    let mut rng = rand::thread_rng();
    next(&mut rng)
}

pub fn wall_start() -> Instant {
    std::time::Instant::now() // jade-audit: allow(nondet-time): same-line form
}
