// Fixture: raw strings, nested block comments and lifetimes must not
// leak rule triggers into the token stream.
/* outer /* Instant::now() inside a nested comment */ still commented */
pub fn describe() -> &'static str {
    r#"HashMap::new() and Instant::now() and thread_rng()"#
}

pub fn newline<'a>(x: &'a str) -> char {
    let _alias: &'a str = x;
    '\n'
}
