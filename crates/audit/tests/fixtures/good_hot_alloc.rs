// Fixture: allocation off the hot path, and recycled buffers on it, stay
// quiet.
pub struct Q {
    items: Vec<u64>,
    scratch: Vec<u64>,
}

impl Q {
    pub fn rebuild(&mut self) {
        self.scratch = Vec::with_capacity(self.items.len());
    }

    #[jade_hot]
    pub fn tick(&mut self) -> usize {
        self.scratch.clear();
        self.items.len()
    }
}
