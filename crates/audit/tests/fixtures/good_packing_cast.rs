// Fixture: checked narrowing and non-id casts pass.
pub fn checked(i: usize) -> u32 {
    u32::try_from(i).expect("fits in the id space")
}

pub fn histogram_bucket(count: usize) -> u32 {
    count as u32
}
