// Fixture: an item-bound suppression covers the whole body, whether it
// sits above the item's attributes or above its signature.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    // jade-audit: allow(hot-panic): fixture — indexes are dense ids.
    #[jade_hot]
    pub fn first(&self, i: usize) -> u64 {
        self.items[i]
    }

    // jade-audit: hot
    // jade-audit: allow(hot-panic): fixture — indexes are dense ids.
    pub fn last(&self, i: usize) -> u64 {
        self.items[i] + self.items[i + 1]
    }
}
