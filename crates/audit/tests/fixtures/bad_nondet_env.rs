// Fixture: environment reads must be flagged.
pub fn knobs() -> (Option<String>, bool) {
    let a = std::env::var("JADE_MODE").ok();
    let b = std::env::var_os("JADE_FAST").is_some();
    (a, b)
}
