// Fixture: a file-scope allow silences the named rule everywhere in the
// file, without touching other rules.
// jade-audit: allow-file(hot-panic): fixture — hand-audited slab.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    #[jade_hot]
    pub fn first(&self, i: usize) -> u64 {
        self.items[i]
    }
}
