// Fixture: unshrunk growth of long-lived state in hot code must be flagged.
pub struct Log {
    entries: Vec<u64>,
    index: Vec<usize>,
}

impl Log {
    #[jade_hot]
    pub fn append(&mut self, v: u64) {
        self.index.push(self.entries.len());
        self.entries.push(v);
    }
}
