// Fixture: explicit deterministic hashers and ordered maps pass.
use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasherDefault;

pub type Det = HashMap<u64, u64, BuildHasherDefault<DetHasher>>;

pub struct Directory {
    by_name: BTreeMap<String, u32>,
    by_id: HashMap<u32, String, BuildHasherDefault<DetHasher>>,
}
