// Fixture: hash-order iteration without an ordered sink must be flagged.
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

pub struct Stats {
    counts: HashMap<String, u64, BuildHasherDefault<DetHasher>>,
}

pub fn dump(s: &Stats) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in s.counts.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}
