// Fixture: OS-entropy randomness must be flagged.
pub fn seed() -> u64 {
    let mut rng = rand::thread_rng();
    next(&mut rng)
}

pub fn reseed() -> Pcg {
    Pcg::from_entropy()
}
