// Fixture: hot functions using non-panicking access pass; cold
// functions may unwrap.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    #[jade_hot]
    pub fn head(&self) -> u64 {
        self.items.first().copied().unwrap_or(0)
    }

    pub fn cold_unwrap(&self) -> u64 {
        self.items.first().copied().unwrap()
    }
}
