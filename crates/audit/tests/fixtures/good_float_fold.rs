// Fixture: integer folds over hash iteration, and float folds over dense
// slices, stay quiet.
use jade_sim::DetHashMap;

pub struct Loads {
    counts: DetHashMap<u32, u64>,
    dense: Vec<f64>,
}

impl Loads {
    pub fn total_count(&self) -> u64 {
        self.counts.values().sum::<u64>()
    }

    pub fn total_load(&self) -> f64 {
        self.dense.iter().sum::<f64>()
    }
}
