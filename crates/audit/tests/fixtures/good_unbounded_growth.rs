// Fixture: growth paired with shrink evidence in the same file stays
// quiet — the field is a pool, not a leak.
pub struct Pool {
    free: Vec<u32>,
}

impl Pool {
    #[jade_hot]
    pub fn put(&mut self, id: u32) {
        self.free.push(id);
    }

    #[jade_hot]
    pub fn get(&mut self) -> Option<u32> {
        self.free.pop()
    }
}
