// Fixture: default-RandomState hash collections must be flagged.
use std::collections::{HashMap, HashSet};

pub struct Directory {
    by_name: HashMap<String, u32>,
}

pub fn build() -> HashSet<u64> {
    let mut s = HashSet::new();
    s.insert(1);
    s
}
