// Fixture: steady-state allocation inside hot functions must be flagged.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    #[jade_hot]
    pub fn drain_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for x in &self.items {
            out.push(x.to_string());
        }
        out
    }

    // jade-audit: hot
    pub fn snapshot(&self) -> Vec<u64> {
        self.items.to_vec()
    }
}
