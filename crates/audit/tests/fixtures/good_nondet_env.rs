// Fixture: explicit configuration instead of environment reads.
pub fn knobs(mode: Option<String>, fast: bool) -> (Option<String>, bool) {
    (mode, fast)
}
