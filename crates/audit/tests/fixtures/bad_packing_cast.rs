// Fixture: truncating casts on id-like integers must be flagged.
pub struct NodeId(pub u32);

pub fn make(i: usize) -> NodeId {
    NodeId(i as u32)
}

pub fn pack(slot: u64) -> u32 {
    slot as u32
}
