// Fixture: order-insensitive sinks and ordered collects pass.
use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasherDefault;

pub struct Stats {
    counts: HashMap<String, u64, BuildHasherDefault<DetHasher>>,
}

pub fn total(s: &Stats) -> u64 {
    s.counts.values().sum()
}

pub fn dump_sorted(s: &Stats) -> BTreeMap<String, u64> {
    let ordered: BTreeMap<String, u64> = s.counts.iter().map(|(k, c)| (k.clone(), *c)).collect();
    ordered
}
