// Fixture: panicking operations inside hot functions must be flagged.
pub struct Q {
    items: Vec<u64>,
}

impl Q {
    #[jade_hot]
    pub fn first(&self, i: usize) -> u64 {
        self.items[i]
    }

    // jade-audit: hot
    pub fn head(&self) -> u64 {
        *self.items.first().unwrap()
    }
}
