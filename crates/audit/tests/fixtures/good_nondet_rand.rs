// Fixture: seeded deterministic RNG passes.
pub fn seeded(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}
