//! Item-level parsing on top of [`crate::lexer`]: just enough syntax to
//! know *which function* a token belongs to.
//!
//! The original analyzer matched token patterns with no notion of items,
//! so `#[jade_hot]` protection stopped at the annotated function's own
//! braces. Interprocedural rules (hot-path reachability, allocation
//! tracking) need the next level up: every `fn` item with its name, the
//! `impl`/`trait` type it belongs to, its attribute set and the exact
//! token range of its body. This module recovers that structure with a
//! single linear pass plus a brace-matching pre-pass — it is still not a
//! full parser (no expressions, no generics resolution), which keeps it
//! dependency-free and fast enough to run on the whole workspace per
//! invocation.
//!
//! Known approximations, all conservative for the rules built on top:
//!
//! * nested `fn` items are recorded as their own items but their tokens
//!   also remain inside the enclosing body range;
//! * `impl` self types are reduced to the final path segment
//!   (`jade_sim::GenSlab<K>` → `GenSlab`), which is how call sites name
//!   them in practice;
//! * trait default methods are attributed to the trait's name.

use crate::lexer::{Lexed, Tok, Token};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` self type (final path segment), if any.
    pub self_ty: Option<String>,
    /// Line of the first attribute on the item (== `sig_line` when the
    /// item carries no attributes). Suppressions above this line bind to
    /// the whole item.
    pub attr_line: u32,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Token-index range of the body, `(open_brace, close_brace)`
    /// inclusive. `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Last line of the item (closing brace, or the signature line for
    /// bodyless declarations).
    pub end_line: u32,
    /// Carries `#[jade_hot]` or a `// jade-audit: hot` marker.
    pub hot_marked: bool,
    /// Carries `#[cold]` — excluded from hot-path propagation.
    pub cold: bool,
}

impl FnItem {
    /// Display name: `Type::name` for methods, `name` for free functions.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that can never be a call-site or item name.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

/// Computes, for every `{` token, the index of its matching `}`.
/// Unbalanced files (mid-edit sources) degrade gracefully: unmatched
/// opens map to the last token.
fn match_braces(toks: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    for open in stack {
        out[open] = Some(toks.len().saturating_sub(1));
    }
    out
}

/// Pending attribute state while scanning toward the item the attributes
/// decorate.
#[derive(Default)]
struct PendingAttrs {
    first_line: Option<u32>,
    hot: bool,
    cold: bool,
}

/// Parses all `fn` items out of a lexed file. `hot_marker_lines` are the
/// lines of `// jade-audit: hot` comments (the comment form of
/// `#[jade_hot]`): a marker whose next code line is the item's first
/// line marks that item hot.
pub fn parse_items(lexed: &Lexed, hot_marker_lines: &[u32]) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let closes = match_braces(toks);
    let ident = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |i: usize, c: char| matches!(toks.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
    // First code line after `line`, for attaching comment hot markers.
    let next_code_line =
        |after: u32| -> Option<u32> { toks.iter().map(|t| t.line).find(|&l| l > after) };

    let mut out = Vec::new();
    // (self type, token index of the scope's closing brace)
    let mut scope_stack: Vec<(String, usize)> = Vec::new();
    let mut pending = PendingAttrs::default();
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, close)) = scope_stack.last() {
            if i > close {
                scope_stack.pop();
            } else {
                break;
            }
        }
        match &toks[i].tok {
            // Outer attribute `#[...]` (inner `#![...]` is skipped the
            // same way but never decorates an item).
            Tok::Punct('#') if punct(i + 1, '[') || (punct(i + 1, '!') && punct(i + 2, '[')) => {
                let inner = punct(i + 1, '!');
                let open = if inner { i + 2 } else { i + 1 };
                let mut depth = 0i32;
                let mut j = open;
                let mut hot = false;
                let mut cold = false;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) if s == "jade_hot" => hot = true,
                        Tok::Ident(s) if s == "cold" && depth == 1 => cold = true,
                        _ => {}
                    }
                    j += 1;
                }
                if !inner {
                    pending.first_line.get_or_insert(toks[i].line);
                    pending.hot |= hot;
                    pending.cold |= cold;
                }
                i = j + 1;
                continue;
            }
            Tok::Punct(';') | Tok::Punct('}') => {
                pending = PendingAttrs::default();
            }
            Tok::Ident(w) if w == "impl" || w == "trait" => {
                pending = PendingAttrs::default();
                // Collect the self type: idents at angle-depth 0 up to the
                // body `{`; `for` restarts collection (trait impls), and
                // `where` stops it.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut last_ident: Option<String> = None;
                let mut collecting = true;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle = (angle - 1).max(0),
                        Tok::Punct('{') if angle == 0 => break,
                        Tok::Punct(';') => break,
                        Tok::Ident(s) if angle == 0 => {
                            if s == "for" {
                                last_ident = None;
                            } else if s == "where" {
                                collecting = false;
                            } else if collecting && !is_keyword(s) {
                                last_ident = Some(s.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && punct(j, '{') {
                    if let (Some(ty), Some(close)) = (last_ident, closes[j]) {
                        scope_stack.push((ty, close));
                    }
                }
                i = j + 1;
                continue;
            }
            Tok::Ident(w) if w == "fn" => {
                let Some(name) = ident(i + 1) else {
                    // `fn(...)` pointer type, not an item.
                    i += 1;
                    continue;
                };
                let sig_line = toks[i].line;
                let attrs = std::mem::take(&mut pending);
                let attr_line = attrs.first_line.unwrap_or(sig_line).min(sig_line);
                // Find the body `{` (or a `;` ending a bodyless decl) at
                // paren/bracket/angle depth 0. Angle depth tracks `->`
                // return-type generics; `->` itself lexes as `-` `>`, so
                // treat a `>` directly after `-` as punctuation, not a
                // closing angle.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                        Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                        Tok::Punct(';') if paren == 0 => break,
                        Tok::Punct('{') if paren == 0 => {
                            body = closes[j].map(|c| (j, c));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = body
                    .and_then(|(_, c)| toks.get(c).map(|t| t.line))
                    .unwrap_or(sig_line);
                let hot_comment = hot_marker_lines
                    .iter()
                    .any(|&m| m < attr_line && next_code_line(m) == Some(attr_line));
                out.push(FnItem {
                    name: name.to_owned(),
                    self_ty: scope_stack.last().map(|(t, _)| t.clone()),
                    attr_line,
                    sig_line,
                    body,
                    end_line,
                    hot_marked: attrs.hot || hot_comment,
                    cold: attrs.cold,
                });
                // Continue scanning *inside* the body too: nested items
                // and inner `impl` blocks are rare but legal.
                i += 2;
                continue;
            }
            Tok::Ident(w)
                if matches!(
                    w.as_str(),
                    "struct" | "enum" | "mod" | "union" | "type" | "static" | "use"
                ) =>
            {
                // Non-fn item keywords consume (and discard) pending
                // attributes so a `#[derive(...)]` never leaks onto the
                // next function.
                pending = PendingAttrs::default();
            }
            Tok::Ident(w)
                if w == "const" && !matches!(ident(i + 1), Some("fn" | "unsafe" | "extern")) =>
            {
                // `const NAME: T = ...` item (but `const fn` keeps its
                // attributes for the fn arm).
                pending = PendingAttrs::default();
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src), &[])
    }

    #[test]
    fn free_and_method_items() {
        let items = parse(
            "fn free(x: u32) -> u32 { x }\n\
             struct S;\n\
             impl S {\n\
                 pub fn method(&self) -> u32 { 1 }\n\
             }\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "free");
        assert_eq!(items[0].self_ty, None);
        assert_eq!(items[1].qualified_name(), "S::method");
    }

    #[test]
    fn trait_impls_use_the_self_type() {
        let items = parse(
            "impl<T: Clone> Display for Wrapper<T> where T: Send {\n\
                 fn fmt(&self) -> u32 { 0 }\n\
             }\n",
        );
        assert_eq!(items[0].self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn attributes_attach_to_the_following_fn() {
        let items = parse(
            "#[jade_hot]\n\
             pub fn hot_one() {}\n\
             #[cold]\n\
             #[inline(never)]\n\
             fn cold_one() {}\n\
             fn plain() {}\n",
        );
        assert!(items[0].hot_marked && !items[0].cold);
        assert!(items[1].cold && !items[1].hot_marked);
        assert_eq!(items[1].attr_line, 3);
        assert!(!items[2].hot_marked && !items[2].cold);
    }

    #[test]
    fn hot_comment_marker_binds_to_next_item() {
        let src = "// jade-audit: hot\nfn marked() {}\nfn unmarked() {}\n";
        let items = parse_items(&lex(src), &[1]);
        assert!(items[0].hot_marked);
        assert!(!items[1].hot_marked);
    }

    #[test]
    fn body_ranges_cover_nested_braces() {
        let src = "fn f() { if x { y(); } }\nfn g() {}\n";
        let items = parse(src);
        let (open, close) = items[0].body.expect("f has a body");
        assert!(open < close);
        assert_eq!(items[0].end_line, 1);
        assert_eq!(items[1].sig_line, 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = parse("fn takes(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "takes");
    }

    #[test]
    fn bodyless_trait_methods_parse() {
        let items = parse("trait T { fn required(&self) -> u32; fn given(&self) -> u32 { 0 } }\n");
        assert_eq!(items.len(), 2);
        assert!(items[0].body.is_none());
        assert!(items[1].body.is_some());
        assert_eq!(items[0].self_ty.as_deref(), Some("T"));
    }
}
