//! `jade-audit`: the workspace determinism/simulation-safety analyzer.
//!
//! The reproduction's headline claim is that every experiment replays
//! byte-identically from `{scenario, seed}`. That property is easy to
//! state and easy to lose: one `Instant::now()` in a scheduler, one
//! default-hashed `HashMap` iterated into a digest, one `as u16` that
//! silently wraps at 65 536 requests, and the committed `results/*.json`
//! stop being reproducible evidence. `jade-audit` turns the contract into
//! a CI gate: it lexes every source file (see [`lexer`]) and pattern-
//! matches the token stream against the rules in [`rules`].
//!
//! Run it as `cargo run -p jade-audit -- check` (exit 0 = clean), or
//! `fix-list` for machine-readable JSON. Per-site escapes use
//! `// jade-audit: allow(<rule>): <reason>` comments; a reason string is
//! mandatory.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use rules::{analyze_source, Config, Diagnostic, Rule, ScopeMode};
use std::fs;
use std::path::{Path, PathBuf};

/// Fixture directory (test data full of deliberate violations) — never
/// scanned as part of the workspace.
const FIXTURES: &str = "crates/audit/tests/fixtures";

/// Walks the workspace rooted at `root` and returns all `.rs` files as
/// workspace-relative forward-slash paths, sorted. Skips `target/`,
/// hidden directories and the audit fixtures.
pub fn workspace_rs_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if rel_path(root, &path).as_deref() == Some(FIXTURES) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Some(rel) = rel_path(root, &path) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    out
}

fn rel_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Some(s)
}

/// Runs the analyzer over the whole workspace (workspace scoping).
pub fn check_workspace(root: &Path, cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rel in workspace_rs_files(root) {
        if let Ok(src) = fs::read_to_string(root.join(&rel)) {
            diags.extend(analyze_source(&rel, &src, cfg));
        }
    }
    diags.sort();
    diags
}

/// Runs the analyzer over explicit files (all-files scoping: every
/// enabled rule applies regardless of path).
pub fn check_files(paths: &[PathBuf], cfg: &Config) -> Vec<Diagnostic> {
    let cfg = Config {
        disabled: cfg.disabled.clone(),
        scope: ScopeMode::AllFiles,
    };
    let mut diags = Vec::new();
    for p in paths {
        let rel = p.to_string_lossy().replace('\\', "/");
        match fs::read_to_string(p) {
            Ok(src) => diags.extend(analyze_source(&rel, &src, &cfg)),
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 0,
                rule: Rule::BadSuppression,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    diags.sort();
    diags
}

/// Minimal JSON string escape.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a machine-readable JSON array (the `fix-list`
/// output format).
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&d.file),
            d.line,
            d.rule.id(),
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Per-crate safety inventory (the `inventory` subcommand): proves which
/// units carry `#![forbid(unsafe_code)]` and counts audit surface.
#[derive(Debug, Default)]
pub struct UnitInventory {
    /// Unit name (`crates/<name>` or `root`).
    pub unit: String,
    /// Number of `.rs` files.
    pub files: usize,
    /// Total source lines.
    pub lines: usize,
    /// Occurrences of the `unsafe` keyword outside strings/comments.
    pub unsafe_tokens: usize,
    /// Whether any file declares `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
    /// `#[jade_hot]` / `jade-audit: hot` marked functions.
    pub hot_fns: usize,
    /// `jade-audit: allow(...)` suppression comments.
    pub suppressions: usize,
}

/// Builds the unsafe/hot/suppression inventory for the workspace.
pub fn inventory(root: &Path) -> Vec<UnitInventory> {
    use lexer::Tok;
    let mut units: std::collections::BTreeMap<String, UnitInventory> =
        std::collections::BTreeMap::new();
    for rel in workspace_rs_files(root) {
        let unit = match rel.split('/').collect::<Vec<_>>().as_slice() {
            ["crates", name, ..] => format!("crates/{name}"),
            _ => "root".to_owned(),
        };
        let Ok(src) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let inv = units.entry(unit.clone()).or_insert_with(|| UnitInventory {
            unit,
            ..UnitInventory::default()
        });
        inv.files += 1;
        inv.lines += src.lines().count();
        let lexed = lexer::lex(&src);
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            match &t.tok {
                Tok::Ident(s) if s == "unsafe" => inv.unsafe_tokens += 1,
                Tok::Ident(s) if s == "forbid" => {
                    // `#![forbid(unsafe_code)]`
                    let next = |k: usize| toks.get(i + k).map(|t| &t.tok);
                    if next(1) == Some(&Tok::Punct('('))
                        && next(2) == Some(&Tok::Ident("unsafe_code".into()))
                    {
                        inv.forbids_unsafe = true;
                    }
                }
                // Count attribute uses (`#[jade_hot]` / `#[jade_hot::jade_hot]`,
                // where the ident is followed by `]`), not imports.
                Tok::Ident(s)
                    if s == "jade_hot"
                        && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(']')) =>
                {
                    inv.hot_fns += 1
                }
                _ => {}
            }
        }
        for c in &lexed.comments {
            let t = c
                .text
                .trim_start_matches(|c: char| c == '!' || c == '/' || c.is_whitespace());
            if let Some(rest) = t.strip_prefix("jade-audit:").map(str::trim) {
                if rest.starts_with("allow") {
                    inv.suppressions += 1;
                } else if rest == "hot" {
                    inv.hot_fns += 1;
                }
            }
        }
    }
    units.into_values().collect()
}

/// Finds the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn diagnostics_json_shape() {
        let diags = vec![Diagnostic {
            file: "x.rs".into(),
            line: 3,
            rule: Rule::NondetTime,
            message: "msg".into(),
        }];
        let j = diagnostics_json(&diags);
        assert!(j.contains("\"rule\": \"nondet-time\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
