//! `jade-audit`: the workspace determinism/simulation-safety analyzer.
//!
//! The reproduction's headline claim is that every experiment replays
//! byte-identically from `{scenario, seed}`. That property is easy to
//! state and easy to lose: one `Instant::now()` in a scheduler, one
//! default-hashed `HashMap` iterated into a digest, one `as u16` that
//! silently wraps at 65 536 requests, and the committed `results/*.json`
//! stop being reproducible evidence. `jade-audit` turns the contract into
//! a CI gate: it lexes every source file (see [`lexer`]), parses the
//! item structure (see [`parse`]), links a workspace call graph (see
//! [`callgraph`]) to propagate `#[jade_hot]` transitively, and checks
//! the rules in [`rules`].
//!
//! Run it as `cargo run -p jade-audit -- check` (exit 0 = clean), or
//! `fix-list` for machine-readable JSON. Per-site escapes use
//! `// jade-audit: allow(<rule>): <reason>` comments; a reason string is
//! mandatory.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;

use callgraph::CallGraph;
use lexer::Lexed;
use parse::FnItem;
use rules::{Config, Diagnostic, Rule, ScopeMode};
use std::fs;
use std::path::{Path, PathBuf};

/// Fixture directory (test data full of deliberate violations) — never
/// scanned as part of the workspace.
const FIXTURES: &str = "crates/audit/tests/fixtures";

/// Walks the workspace rooted at `root` and returns all `.rs` files as
/// workspace-relative forward-slash paths, sorted. Skips `target/`,
/// hidden directories and the audit fixtures.
pub fn workspace_rs_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if rel_path(root, &path).as_deref() == Some(FIXTURES) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Some(rel) = rel_path(root, &path) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    out
}

fn rel_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Some(s)
}

/// One loaded, lexed and item-parsed source file.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Raw source (kept for line counting in the inventory).
    pub src: String,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// Parsed fn items (hot markers already attached).
    pub items: Vec<FnItem>,
}

/// Lexes and parses one source file.
fn load_source(rel: String, src: String) -> SourceFile {
    let lexed = lexer::lex(&src);
    let markers = rules::hot_marker_lines(&lexed);
    let items = parse::parse_items(&lexed, &markers);
    SourceFile {
        rel,
        src,
        lexed,
        items,
    }
}

/// Loads every workspace source file.
pub fn load_workspace(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for rel in workspace_rs_files(root) {
        if let Ok(src) = fs::read_to_string(root.join(&rel)) {
            files.push(load_source(rel, src));
        }
    }
    files
}

fn file_views(files: &[SourceFile]) -> Vec<(&[lexer::Token], &[FnItem])> {
    files
        .iter()
        .map(|f| (f.lexed.tokens.as_slice(), f.items.as_slice()))
        .collect()
}

/// Runs the rule passes over a set of loaded files that form one
/// analysis unit: the call graph (and therefore hot-reachability) links
/// across all of them.
fn analyze_loaded(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let views = file_views(files);
    let cg = CallGraph::build(&views);
    let hot = cg.hot_reachability(&views);
    let mut diags = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let regions = rules::hot_regions_for_file(&cg, &hot, fi, &views);
        diags.extend(rules::analyze_file(
            &f.rel, &f.lexed, &f.items, &regions, cfg,
        ));
    }
    diags.sort();
    diags
}

/// Runs the analyzer over the whole workspace (workspace scoping,
/// cross-file hot propagation).
pub fn check_workspace(root: &Path, cfg: &Config) -> Vec<Diagnostic> {
    analyze_loaded(&load_workspace(root), cfg)
}

/// Runs the analyzer over explicit files (all-files scoping: every
/// enabled rule applies regardless of path). The named files form their
/// own mini-workspace, so hotness propagates among them but not from the
/// real workspace.
pub fn check_files(paths: &[PathBuf], cfg: &Config) -> Vec<Diagnostic> {
    let cfg = Config {
        disabled: cfg.disabled.clone(),
        scope: ScopeMode::AllFiles,
    };
    let mut files = Vec::new();
    let mut diags = Vec::new();
    for p in paths {
        let rel = p.to_string_lossy().replace('\\', "/");
        match fs::read_to_string(p) {
            Ok(src) => files.push(load_source(rel, src)),
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 0,
                rule: Rule::BadSuppression,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    diags.extend(analyze_loaded(&files, &cfg));
    diags.sort();
    diags
}

/// Minimal JSON string escape.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a machine-readable JSON array (the `fix-list`
/// output format).
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&d.file),
            d.line,
            d.rule.id(),
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Unit ("crates/<name>" or "root") a workspace-relative path belongs to.
fn unit_of(rel: &str) -> String {
    match rel.split('/').collect::<Vec<_>>().as_slice() {
        ["crates", name, ..] => format!("crates/{name}"),
        _ => "root".to_owned(),
    }
}

/// Per-crate safety inventory (the `inventory` subcommand): proves which
/// units carry `#![forbid(unsafe_code)]` and counts audit surface.
#[derive(Debug, Default)]
pub struct UnitInventory {
    /// Unit name (`crates/<name>` or `root`).
    pub unit: String,
    /// Number of `.rs` files.
    pub files: usize,
    /// Total source lines.
    pub lines: usize,
    /// Occurrences of the `unsafe` keyword outside strings/comments.
    pub unsafe_tokens: usize,
    /// Whether any file declares `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
    /// `#[jade_hot]` / `jade-audit: hot` marked functions.
    pub hot_fns: usize,
    /// Functions hot-*reachable* through the workspace call graph
    /// (always ≥ the textually marked count for units with roots).
    pub hot_reachable: usize,
    /// `jade-audit: allow(...)` suppression comments.
    pub suppressions: usize,
}

/// A `#[jade_hot]` root as reported by [`hot_report`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HotRoot {
    /// Workspace-relative file.
    pub file: String,
    /// Line of the `fn` signature.
    pub line: u32,
    /// Qualified name (`Type::name` or `name`).
    pub name: String,
}

/// The interprocedural hot-path report (the `inventory` extension).
#[derive(Debug, Default)]
pub struct HotReport {
    /// Textually marked roots, sorted by (file, line).
    pub roots: Vec<HotRoot>,
    /// Unit → number of hot-reachable functions, sorted by unit.
    pub reachable_by_unit: Vec<(String, usize)>,
    /// Total hot-reachable functions workspace-wide (roots included).
    pub total_reachable: usize,
}

/// Computes the hot roots and per-unit hot-reachable counts over already
/// loaded workspace files.
pub fn hot_report(files: &[SourceFile]) -> HotReport {
    let views = file_views(files);
    let cg = CallGraph::build(&views);
    let hot = cg.hot_reachability(&views);
    let mut report = HotReport::default();
    let mut by_unit: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for &id in hot.hot.keys() {
        let sym = &cg.fns[id];
        let f = &files[sym.file];
        let it = &f.items[sym.item];
        *by_unit.entry(unit_of(&f.rel)).or_insert(0) += 1;
        report.total_reachable += 1;
        if it.hot_marked {
            report.roots.push(HotRoot {
                file: f.rel.clone(),
                line: it.sig_line,
                name: it.qualified_name(),
            });
        }
    }
    report.roots.sort();
    report.reachable_by_unit = by_unit.into_iter().collect();
    report
}

/// Renders the hot report as deterministic JSON (consumed by the CI
/// hot-root snapshot diff; `crates/audit/hot_roots.json` pins `roots`).
pub fn hot_report_json(report: &HotReport) -> String {
    let mut out = String::from("{\n  \"roots\": [\n");
    for (i, r) in report.roots.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"name\": \"{}\"}}{}\n",
            json_escape(&r.file),
            r.line,
            json_escape(&r.name),
            if i + 1 < report.roots.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"hot_reachable\": {\n");
    for (i, (unit, n)) in report.reachable_by_unit.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            json_escape(unit),
            n,
            if i + 1 < report.reachable_by_unit.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"total_hot_reachable\": {}\n}}",
        report.total_reachable
    ));
    out
}

/// Builds the unsafe/hot/suppression inventory for the workspace.
pub fn inventory(root: &Path) -> Vec<UnitInventory> {
    let files = load_workspace(root);
    inventory_of(&files)
}

/// Inventory over already loaded files (so `inventory` and [`hot_report`]
/// can share one parse).
pub fn inventory_of(files: &[SourceFile]) -> Vec<UnitInventory> {
    use lexer::Tok;
    let mut units: std::collections::BTreeMap<String, UnitInventory> =
        std::collections::BTreeMap::new();
    for f in files {
        let inv = units
            .entry(unit_of(&f.rel))
            .or_insert_with(|| UnitInventory {
                unit: unit_of(&f.rel),
                ..UnitInventory::default()
            });
        inv.files += 1;
        inv.lines += f.src.lines().count();
        let toks = &f.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            match &t.tok {
                Tok::Ident(s) if s == "unsafe" => inv.unsafe_tokens += 1,
                Tok::Ident(s) if s == "forbid" => {
                    // `#![forbid(unsafe_code)]`
                    let next = |k: usize| toks.get(i + k).map(|t| &t.tok);
                    if next(1) == Some(&Tok::Punct('('))
                        && next(2) == Some(&Tok::Ident("unsafe_code".into()))
                    {
                        inv.forbids_unsafe = true;
                    }
                }
                // Count attribute uses (`#[jade_hot]` / `#[jade_hot::jade_hot]`,
                // where the ident is followed by `]`), not imports.
                Tok::Ident(s)
                    if s == "jade_hot"
                        && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(']')) =>
                {
                    inv.hot_fns += 1
                }
                _ => {}
            }
        }
        for c in &f.lexed.comments {
            let t = c
                .text
                .trim_start_matches(|c: char| c == '!' || c == '/' || c.is_whitespace());
            if let Some(rest) = t.strip_prefix("jade-audit:").map(str::trim) {
                if rest.starts_with("allow") {
                    inv.suppressions += 1;
                } else if rest == "hot" {
                    inv.hot_fns += 1;
                }
            }
        }
    }
    let report = hot_report(files);
    for (unit, n) in &report.reachable_by_unit {
        if let Some(inv) = units.get_mut(unit) {
            inv.hot_reachable = *n;
        }
    }
    units.into_values().collect()
}

/// Finds the workspace root: walks up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn diagnostics_json_shape() {
        let diags = vec![Diagnostic {
            file: "x.rs".into(),
            line: 3,
            rule: Rule::NondetTime,
            message: "msg".into(),
        }];
        let j = diagnostics_json(&diags);
        assert!(j.contains("\"rule\": \"nondet-time\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn hot_report_json_shape() {
        let files = vec![load_source(
            "crates/x/src/lib.rs".into(),
            "#[jade_hot]\nfn root() { helper(); }\nfn helper() {}\n".into(),
        )];
        let rep = hot_report(&files);
        assert_eq!(rep.roots.len(), 1);
        assert_eq!(rep.roots[0].name, "root");
        assert_eq!(rep.total_reachable, 2);
        let j = hot_report_json(&rep);
        assert!(j.contains("\"total_hot_reachable\": 2"));
        assert!(j.contains("\"crates/x\": 2"));
    }
}
