//! `jade-audit` CLI.
//!
//! ```text
//! jade-audit check [PATHS...] [--root DIR] [--disable RULE]... [--format text|json]
//! jade-audit fix-list [--root DIR] [--disable RULE]...
//! jade-audit inventory [--root DIR] [--format text|json]
//! jade-audit list-rules
//! ```
//!
//! `check` with no PATHS scans the whole workspace under workspace
//! scoping and exits nonzero if any diagnostic fires; with explicit PATHS
//! every enabled rule applies to every named file (used by the fixture
//! tests). `fix-list` always exits 0 and prints the JSON diagnostic
//! array. `inventory` prints the per-crate unsafe/hot/suppression table
//! plus the interprocedural hot-reachability report; `--format json`
//! emits the hot-root list CI diffs against `crates/audit/hot_roots.json`.

#![forbid(unsafe_code)]

use jade_audit::rules::{Config, Rule, ScopeMode, ALL_RULES};
use jade_audit::{
    check_files, check_workspace, diagnostics_json, find_workspace_root, hot_report,
    hot_report_json, inventory_of, load_workspace,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cmd: String,
    paths: Vec<PathBuf>,
    root: Option<PathBuf>,
    disabled: Vec<Rule>,
    format: String,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".to_owned());
    let mut args = Args {
        cmd,
        paths: Vec::new(),
        root: None,
        disabled: Vec::new(),
        format: "text".to_owned(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--disable" => {
                let v = argv.next().ok_or("--disable needs a rule id")?;
                let r = Rule::parse(&v).ok_or_else(|| format!("unknown rule '{v}'"))?;
                args.disabled.push(r);
            }
            "--format" => {
                let v = argv.next().ok_or("--format needs text|json")?;
                if v != "text" && v != "json" {
                    return Err(format!("unknown format '{v}'"));
                }
                args.format = v;
            }
            p if !p.starts_with('-') => args.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn resolve_root(args: &Args) -> Result<PathBuf, String> {
    if let Some(r) = &args.root {
        return Ok(r.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    find_workspace_root(&cwd).ok_or_else(|| {
        "no [workspace] Cargo.toml found above the current directory; pass --root".to_owned()
    })
}

fn usage() -> &'static str {
    "jade-audit: determinism/simulation-safety analyzer\n\
     \n\
     usage:\n\
       jade-audit check [PATHS...] [--root DIR] [--disable RULE]... [--format text|json]\n\
       jade-audit fix-list [--root DIR] [--disable RULE]...\n\
       jade-audit inventory [--root DIR] [--format text|json]\n\
       jade-audit list-rules\n\
     \n\
     `check` exits 1 when violations are found. Suppress per site with\n\
     `// jade-audit: allow(<rule>): <reason>` (the reason is mandatory)."
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("jade-audit: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cfg = Config {
        disabled: args.disabled.iter().copied().collect(),
        scope: ScopeMode::Workspace,
    };
    match args.cmd.as_str() {
        "check" | "fix-list" => {
            let diags = if args.paths.is_empty() {
                let root = match resolve_root(&args) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("jade-audit: {e}");
                        return ExitCode::from(2);
                    }
                };
                check_workspace(&root, &cfg)
            } else {
                check_files(&args.paths, &cfg)
            };
            if args.cmd == "fix-list" || args.format == "json" {
                println!("{}", diagnostics_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    println!("jade-audit: clean");
                } else {
                    println!("jade-audit: {} violation(s)", diags.len());
                }
            }
            if args.cmd == "check" && !diags.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "inventory" => {
            let root = match resolve_root(&args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("jade-audit: {e}");
                    return ExitCode::from(2);
                }
            };
            let files = load_workspace(&root);
            let report = hot_report(&files);
            if args.format == "json" {
                println!("{}", hot_report_json(&report));
                return ExitCode::SUCCESS;
            }
            println!(
                "{:<18} {:>5} {:>7} {:>7} {:>14} {:>8} {:>9} {:>12}",
                "unit",
                "files",
                "lines",
                "unsafe",
                "forbid(unsafe)",
                "hot-fns",
                "hot-reach",
                "suppressions"
            );
            let mut missing_forbid = Vec::new();
            for u in inventory_of(&files) {
                println!(
                    "{:<18} {:>5} {:>7} {:>7} {:>14} {:>8} {:>9} {:>12}",
                    u.unit,
                    u.files,
                    u.lines,
                    u.unsafe_tokens,
                    if u.forbids_unsafe { "yes" } else { "NO" },
                    u.hot_fns,
                    u.hot_reachable,
                    u.suppressions
                );
                if !u.forbids_unsafe && u.unsafe_tokens == 0 {
                    missing_forbid.push(u.unit);
                }
            }
            if !missing_forbid.is_empty() {
                println!(
                    "note: unsafe-free units without #![forbid(unsafe_code)]: {}",
                    missing_forbid.join(", ")
                );
            }
            println!(
                "hot roots: {} (fns hot-reachable: {})",
                report.roots.len(),
                report.total_reachable
            );
            for r in &report.roots {
                println!("  {}:{} {}", r.file, r.line, r.name);
            }
            ExitCode::SUCCESS
        }
        "list-rules" => {
            for r in ALL_RULES {
                println!("{:<16} {}", r.id(), r.describe());
            }
            ExitCode::SUCCESS
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("jade-audit: unknown command '{other}'\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}
