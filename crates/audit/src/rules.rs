//! The determinism/simulation-safety rule set.
//!
//! Every rule is a token-pattern match over [`crate::lexer`]'s output,
//! scoped by workspace path (see [`rule_in_scope`]) and — for the hot
//! rules — by the interprocedural hot-reachable set computed in
//! [`crate::callgraph`]. The rules encode the contract that every
//! committed `results/*.json` digest depends on:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `nondet-time`      | `Instant::now` / `SystemTime::now` outside the bench crate |
//! | `nondet-rand`      | `thread_rng` / `from_entropy` (OS-seeded randomness) |
//! | `nondet-env`       | `std::env::var*` outside `crates/bench/src/cli.rs` |
//! | `nondet-hasher`    | `HashMap`/`HashSet` with the default `RandomState` in digest crates |
//! | `unordered-iter`   | iterating a hash map/set without an ordered sink |
//! | `packing-cast`     | truncating `as` casts on id-like integers outside the packing modules |
//! | `hot-panic`        | `unwrap`/`expect`/indexing in hot-reachable functions |
//! | `hot-alloc`        | container/string construction in hot-reachable functions |
//! | `float-fold`       | f64 `sum`/`fold` over iteration whose order is not pinned |
//! | `unbounded-growth` | hot-path push/insert into a field with no shrink anywhere |
//! | `bad-suppression`  | malformed or reason-less `jade-audit:` directives |
//!
//! "Hot-reachable" means reachable in the workspace call graph from a
//! `#[jade_hot]` root (engine `step`/`run_until`, `System::handle`,
//! `on_db_dispatch`), with `#[cold]` functions acting as propagation
//! barriers — not merely textually annotated.
//!
//! Suppression grammar (same line, the line directly above the code, or
//! directly above an item's attributes/signature to cover the whole
//! item):
//!
//! ```text
//! // jade-audit: allow(hot-panic, packing-cast): reason the invariant holds
//! ```
//!
//! Hand-audited low-level modules (slab/heap internals, where raw
//! indexing under a structural invariant is the whole point) may instead
//! declare a file-scope escape once, near the top of the file:
//!
//! ```text
//! // jade-audit: allow-file(hot-panic): heap indices maintained by sift invariants
//! ```
//!
//! The reason string is mandatory: a suppression records *why* the code
//! is safe, not just that someone wanted the diagnostic gone. A
//! suppression without a reason is itself a `bad-suppression` violation.

use crate::callgraph::HotCause;
use crate::lexer::{Comment, Lexed, Tok, Token};
use crate::parse::FnItem;
use std::collections::BTreeSet;
use std::fmt;

/// One enforced rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    NondetTime,
    /// OS-seeded randomness (`thread_rng`, `from_entropy`).
    NondetRand,
    /// Process-environment reads (`env::var`, `env::var_os`, …).
    NondetEnv,
    /// Default-`RandomState` hash collections in digest-feeding crates.
    NondetHasher,
    /// Iteration over a hash map/set whose order could leak into results.
    UnorderedIter,
    /// Truncating `as` casts on id-like integers outside packing modules.
    PackingCast,
    /// `unwrap`/`expect`/indexing in hot-reachable functions.
    HotPanic,
    /// Container/string construction in hot-reachable functions.
    HotAlloc,
    /// f64 accumulation over iteration whose order is not pinned.
    FloatFold,
    /// Hot-path growth of long-lived fields with no retention bound.
    UnboundedGrowth,
    /// Malformed `jade-audit:` suppression directives.
    BadSuppression,
}

/// All rules, in diagnostic-sort order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::NondetTime,
    Rule::NondetRand,
    Rule::NondetEnv,
    Rule::NondetHasher,
    Rule::UnorderedIter,
    Rule::PackingCast,
    Rule::HotPanic,
    Rule::HotAlloc,
    Rule::FloatFold,
    Rule::UnboundedGrowth,
    Rule::BadSuppression,
];

impl Rule {
    /// Stable rule id used in diagnostics, CLI flags and suppressions.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetTime => "nondet-time",
            Rule::NondetRand => "nondet-rand",
            Rule::NondetEnv => "nondet-env",
            Rule::NondetHasher => "nondet-hasher",
            Rule::UnorderedIter => "unordered-iter",
            Rule::PackingCast => "packing-cast",
            Rule::HotPanic => "hot-panic",
            Rule::HotAlloc => "hot-alloc",
            Rule::FloatFold => "float-fold",
            Rule::UnboundedGrowth => "unbounded-growth",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// One-line description (for `list-rules`).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NondetTime => "wall-clock reads; simulation code must use virtual time (SimTime)",
            Rule::NondetRand => "OS-seeded randomness; use the run's seeded SimRng",
            Rule::NondetEnv => "environment reads outside crates/bench/src/cli.rs",
            Rule::NondetHasher => {
                "HashMap/HashSet with the default RandomState hasher in digest-feeding crates"
            }
            Rule::UnorderedIter => "hash map/set iteration without an order-insensitive sink",
            Rule::PackingCast => {
                "truncating `as` cast on an id-like integer outside the audited packing modules"
            }
            Rule::HotPanic => "unwrap/expect/indexing in a function hot-reachable from #[jade_hot]",
            Rule::HotAlloc => {
                "Vec/Box/String/format!/collect construction in hot-reachable code; recycle \
                 through a pool or suppress with the pooling invariant"
            }
            Rule::FloatFold => {
                "f64 sum/fold over hash-order iteration; float addition is order-sensitive, \
                 pin the iteration order"
            }
            Rule::UnboundedGrowth => {
                "hot-path push/insert into a long-lived field with no shrink anywhere in the \
                 file; bound retention"
            }
            Rule::BadSuppression => "malformed or reason-less jade-audit suppression",
        }
    }

    /// Parses a rule id (as used in `allow(...)` and `--disable`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == s.trim())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// How path-based scoping is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeMode {
    /// Workspace layout scoping (digest crates, bench exemptions, packing
    /// modules) — the CI configuration.
    Workspace,
    /// Every enabled rule applies to every file — used for explicit file
    /// arguments and the fixture tests.
    AllFiles,
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rules switched off (`--disable <rule>`).
    pub disabled: BTreeSet<Rule>,
    /// Path scoping mode.
    pub scope: ScopeMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            disabled: BTreeSet::new(),
            scope: ScopeMode::AllFiles,
        }
    }
}

/// Crates whose computation feeds run digests: the strict scope.
const DIGEST_SCOPES: [&str; 7] = [
    "crates/sim/",
    "crates/cluster/",
    "crates/core/",
    "crates/tiers/",
    "crates/rubis/",
    "crates/fractal/",
    "src/",
];

/// Hand-audited packing modules allowed to use raw `as` truncation on
/// packed ids (`GenSlab`/`EventToken`/`PsCpu` slot packing, `RequestId`).
const PACKING_MODULES: [&str; 4] = [
    "crates/sim/src/slab.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/cpu.rs",
    "crates/tiers/src/request.rs",
];

fn in_digest_scope(path: &str) -> bool {
    DIGEST_SCOPES.iter().any(|p| path.starts_with(p))
}

/// Whether `rule` applies to the file at workspace-relative `path`.
pub fn rule_in_scope(rule: Rule, path: &str, mode: ScopeMode) -> bool {
    if mode == ScopeMode::AllFiles {
        return true;
    }
    match rule {
        // The bench harness measures wall-clock by design (its numbers are
        // *labelled* wall-clock); everything else runs on virtual time.
        Rule::NondetTime => !path.starts_with("crates/bench/"),
        Rule::NondetRand => true,
        // All environment knobs funnel through the bench CLI module.
        Rule::NondetEnv => path != "crates/bench/src/cli.rs",
        Rule::NondetHasher | Rule::UnorderedIter | Rule::FloatFold => in_digest_scope(path),
        Rule::PackingCast => in_digest_scope(path) && !PACKING_MODULES.contains(&path),
        // The hot contract is a property of the simulation substrate;
        // test harnesses and the bench driver are off the event path
        // even when name resolution drags them into the call graph.
        Rule::HotPanic | Rule::HotAlloc | Rule::UnboundedGrowth => in_digest_scope(path),
        Rule::BadSuppression => true,
    }
}

/// Parsed `jade-audit:` directive.
enum Directive {
    Allow(Vec<Rule>),
    /// `allow-file(...)`: suppresses the listed rules for the whole file.
    /// Reserved for hand-audited low-level modules (slab/heap internals)
    /// where the flagged idiom *is* the design and a per-site comment
    /// would repeat the same structural invariant dozens of times.
    AllowFile(Vec<Rule>),
    Hot,
}

/// Parses the directive out of a comment body, if any. `Some(Err)` is a
/// malformed directive (a `bad-suppression` violation).
///
/// Only comments that *start* with `jade-audit:` (after doc-comment
/// decoration) are directives — prose that merely mentions the grammar,
/// like this sentence, is ignored.
fn parse_directive(text: &str) -> Option<Result<Directive, String>> {
    let t = text.trim_start_matches(|c: char| c == '!' || c == '/' || c.is_whitespace());
    let rest = t.strip_prefix("jade-audit:")?.trim();
    if rest == "hot" {
        return Some(Ok(Directive::Hot));
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let file_scope = args.starts_with("-file");
        let args = args.strip_prefix("-file").unwrap_or(args).trim_start();
        let Some(inner) = args.strip_prefix('(') else {
            return Some(Err(
                "malformed allow; expected allow(<rule>): <reason>".into()
            ));
        };
        let Some(close) = inner.find(')') else {
            return Some(Err("malformed allow; missing ')'".into()));
        };
        let mut rules = Vec::new();
        for part in inner[..close].split(',') {
            match Rule::parse(part) {
                Some(r) => rules.push(r),
                None => return Some(Err(format!("unknown rule '{}' in allow(...)", part.trim()))),
            }
        }
        if rules.is_empty() {
            return Some(Err("allow(...) names no rule".into()));
        }
        let reason = inner[close + 1..]
            .trim()
            .trim_start_matches([':', '-'])
            .trim();
        if reason.is_empty() {
            return Some(Err(
                "suppression must carry a reason string: allow(<rule>): <why>".into(),
            ));
        }
        return Some(Ok(if file_scope {
            Directive::AllowFile(rules)
        } else {
            Directive::Allow(rules)
        }));
    }
    Some(Err(format!("unrecognized jade-audit directive '{rest}'")))
}

/// Lines of `// jade-audit: hot` markers (the comment form of
/// `#[jade_hot]`) in a lexed file, for the item parser.
pub fn hot_marker_lines(lexed: &Lexed) -> Vec<u32> {
    lexed
        .comments
        .iter()
        .filter_map(|c| match parse_directive(&c.text) {
            Some(Ok(Directive::Hot)) => Some(c.line),
            _ => None,
        })
        .collect()
}

/// Identifiers (or snake_case segments) that mark an integer as id-like
/// for the `packing-cast` rule.
fn is_id_like(ident: &str) -> bool {
    if ident.len() >= 3 && ident.ends_with("Id") {
        return true;
    }
    ident.split('_').any(|seg| {
        matches!(
            seg.to_ascii_lowercase().as_str(),
            "id" | "ids"
                | "key"
                | "keys"
                | "slot"
                | "slots"
                | "seq"
                | "gen"
                | "generation"
                | "token"
                | "tokens"
                | "raw"
        )
    })
}

/// Type names treated as hash collections for `unordered-iter` receiver
/// tracking (the det aliases iterate in *reproducible* but still
/// hash-dependent order, so they are hazards too).
const HASHY_TYPES: [&str; 6] = [
    "HashMap",
    "HashSet",
    "DetHashMap",
    "DetHashSet",
    "FxHashMap",
    "FxHashSet",
];

/// Iterator sinks whose result is independent of visit order, accepted as
/// escapes for `unordered-iter` (plus explicit sorts / ordered collects).
/// `sum`/`min`/`max` are only order-insensitive for *integers* — the
/// `float-fold` rule closes the floating-point gap.
const ORDER_INSENSITIVE: [&str; 16] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "sum",
    "min",
    "max",
    "all",
    "any",
    "is_empty",
];

const ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

/// Container constructors whose call allocates (for `hot-alloc`).
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "VecDeque", "String", "Box", "Rc", "Arc", "BTreeMap", "BTreeSet",
];
const ALLOC_CTORS: [&str; 5] = ["new", "with_capacity", "from", "from_iter", "default"];
/// Method calls that allocate their result (for `hot-alloc`).
const ALLOC_METHODS: [&str; 5] = ["collect", "to_vec", "to_owned", "to_string", "into_owned"];
/// Allocating macros (for `hot-alloc`).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Methods that grow a collection (for `unbounded-growth`).
const GROW_METHODS: [&str; 5] = ["push", "insert", "push_back", "push_front", "extend"];
/// Methods that shrink/recycle a collection — evidence of a retention
/// bound (for `unbounded-growth`).
const SHRINK_METHODS: [&str; 14] = [
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "swap_remove",
    "clear",
    "truncate",
    "drain",
    "retain",
    "retain_mut",
    "split_off",
    "take",
    "replace",
    "dedup",
];

/// One hot-reachable function's body inside a specific file, as computed
/// by [`crate::callgraph`]. Token indices refer to that file's lexed
/// token stream.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// Inclusive token-index range of the body (`{` … `}`).
    pub tok_range: (usize, usize),
    /// Qualified function name (`Type::name` or `name`).
    pub name: String,
    /// Root or transitive, with provenance.
    pub cause: HotCause,
}

impl HotRegion {
    /// How the hot contract applies here, for diagnostics.
    fn describe(&self) -> String {
        match &self.cause {
            HotCause::Root => format!("#[jade_hot] fn `{}`", self.name),
            HotCause::Via(parent) => {
                format!(
                    "hot-reachable fn `{}` (called from `{}`)",
                    self.name, parent
                )
            }
        }
    }
}

/// Analyzes one file's source in isolation: a single-file workspace is
/// built, so `#[jade_hot]` still propagates to functions the roots call
/// *within the file*, but no cross-file edges exist. `path` must be
/// workspace-relative with forward slashes; it is copied into each
/// diagnostic.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(src);
    let markers = hot_marker_lines(&lexed);
    let items = crate::parse::parse_items(&lexed, &markers);
    let files = vec![(lexed.tokens.as_slice(), items.as_slice())];
    let cg = crate::callgraph::CallGraph::build(&files);
    let hot = cg.hot_reachability(&files);
    let regions = hot_regions_for_file(&cg, &hot, 0, &files);
    analyze_file(path, &lexed, &items, &regions, cfg)
}

/// Extracts the [`HotRegion`]s of one file from a workspace hot set.
pub fn hot_regions_for_file(
    cg: &crate::callgraph::CallGraph,
    hot: &crate::callgraph::HotSet,
    file_idx: usize,
    files: &[(&[Token], &[FnItem])],
) -> Vec<HotRegion> {
    let mut out = Vec::new();
    for (&id, cause) in &hot.hot {
        let sym = &cg.fns[id];
        if sym.file != file_idx {
            continue;
        }
        let it = &files[sym.file].1[sym.item];
        if let Some(body) = it.body {
            out.push(HotRegion {
                tok_range: body,
                name: it.qualified_name(),
                cause: cause.clone(),
            });
        }
    }
    // Sort by body start so nested (inner) regions override outer ones in
    // the per-token map.
    out.sort_by_key(|r| r.tok_range.0);
    out
}

/// The full per-file rule pass. `items` are the file's parsed fn items
/// (for item-bound suppressions); `hot_regions` the hot-reachable bodies.
pub fn analyze_file(
    path: &str,
    lexed: &Lexed,
    items: &[FnItem],
    hot_regions: &[HotRegion],
    cfg: &Config,
) -> Vec<Diagnostic> {
    let toks = &lexed.tokens;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let enabled = |r: Rule| !cfg.disabled.contains(&r) && rule_in_scope(r, path, cfg.scope);
    let diag = |line: u32, rule: Rule, message: String| Diagnostic {
        file: path.to_owned(),
        line,
        rule,
        message,
    };

    // ------------------------------------------------------------------
    // Comments: suppressions and bad directives (hot markers were already
    // consumed by the parser).
    // ------------------------------------------------------------------
    let mut suppressions: Vec<(u32, Vec<Rule>)> = Vec::new();
    let mut file_allows: BTreeSet<Rule> = BTreeSet::new();
    for Comment { line, text } in &lexed.comments {
        match parse_directive(text) {
            None | Some(Ok(Directive::Hot)) => {}
            Some(Ok(Directive::Allow(rules))) => suppressions.push((*line, rules)),
            Some(Ok(Directive::AllowFile(rules))) => file_allows.extend(rules),
            Some(Err(msg)) if enabled(Rule::BadSuppression) => {
                raw.push(diag(*line, Rule::BadSuppression, msg));
            }
            Some(Err(_)) => {}
        }
    }

    // ------------------------------------------------------------------
    // Per-token hot-region map (inner regions win on overlap, so nested
    // fns report the innermost name).
    // ------------------------------------------------------------------
    let mut hot_at: Vec<Option<u32>> = vec![None; toks.len()];
    for (ri, r) in hot_regions.iter().enumerate() {
        let (a, b) = r.tok_range;
        for slot in hot_at
            .iter_mut()
            .take(b.min(toks.len().saturating_sub(1)) + 1)
            .skip(a)
        {
            *slot = Some(ri as u32);
        }
    }
    let hot_region = |i: usize| -> Option<&HotRegion> {
        hot_at
            .get(i)
            .copied()
            .flatten()
            .map(|ri| &hot_regions[ri as usize])
    };

    // ------------------------------------------------------------------
    // Pass A: hash-typed names (aliases, fields, lets) for unordered-iter.
    // ------------------------------------------------------------------
    let mut hashy_types: BTreeSet<String> = HASHY_TYPES.iter().map(|s| s.to_string()).collect();
    let mut hashy_vars: BTreeSet<String> = BTreeSet::new();
    let ident = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |i: usize, c: char| matches!(toks.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);

    // Type aliases: `type X = ... Hashy ... ;`
    for i in 0..toks.len() {
        if ident(i) == Some("type") {
            if let Some(name) = ident(i + 1) {
                let mut j = i + 2;
                let mut rhs_hashy = false;
                while j < toks.len() && !punct(j, ';') {
                    if let Some(t) = ident(j) {
                        if hashy_types.contains(t) {
                            rhs_hashy = true;
                        }
                    }
                    j += 1;
                }
                if rhs_hashy {
                    hashy_types.insert(name.to_owned());
                }
            }
        }
    }
    // Declarations: `name: [&mut path::]Hashy<...>` (fields, args, typed
    // lets) and `let [mut] name = [path::]Hashy::...`.
    for i in 0..toks.len() {
        if let Some(name) = ident(i) {
            if punct(i + 1, ':') && !punct(i + 2, ':') && !punct(i, ':') {
                // Walk the type path after the colon.
                let mut j = i + 2;
                let mut steps = 0;
                while j < toks.len() && steps < 16 {
                    match &toks[j].tok {
                        Tok::Ident(t) if t == "mut" || t == "dyn" => j += 1,
                        Tok::Punct('&') | Tok::Lifetime => j += 1,
                        Tok::Ident(t) => {
                            if hashy_types.contains(t) {
                                hashy_vars.insert(name.to_owned());
                                break;
                            }
                            // Follow `path::` segments only.
                            if punct(j + 1, ':') && punct(j + 2, ':') {
                                j += 3;
                            } else {
                                break;
                            }
                        }
                        _ => break,
                    }
                    steps += 1;
                }
            }
            if name == "let" {
                let mut j = i + 1;
                if ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(var) = ident(j) {
                    if punct(j + 1, '=') && !punct(j + 2, '=') {
                        // First few rhs tokens decide (Hashy::new / default).
                        for k in (j + 2)..(j + 10).min(toks.len()) {
                            if punct(k, '(') || punct(k, ';') {
                                break;
                            }
                            if let Some(t) = ident(k) {
                                if hashy_types.contains(t) {
                                    hashy_vars.insert(var.to_owned());
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass A2 (unbounded-growth): fields with shrink/recycle evidence
    // anywhere in the file.
    // ------------------------------------------------------------------
    let mut shrunk_fields: BTreeSet<&str> = BTreeSet::new();
    if enabled(Rule::UnboundedGrowth) {
        for i in 0..toks.len() {
            if let Some(w) = ident(i) {
                // `<field>.shrink_method(`
                if SHRINK_METHODS.contains(&w) && punct(i + 1, '(') && punct(i.wrapping_sub(1), '.')
                {
                    if let Some(f) = ident(i.wrapping_sub(2)) {
                        shrunk_fields.insert(f);
                    }
                }
                // `mem::take(&mut self.field)` / `mem::replace(&mut self.field, …)`
                if (w == "take" || w == "replace") && punct(i + 1, '(') {
                    let mut j = i + 2;
                    let mut last = None;
                    while j < toks.len() && j < i + 10 && !punct(j, ')') && !punct(j, ',') {
                        if let Some(s) = ident(j) {
                            last = Some(s);
                        }
                        j += 1;
                    }
                    if let Some(f) = last {
                        shrunk_fields.insert(f);
                    }
                }
                // `self.field = …` reassignment (not `==`).
                if w == "self" && punct(i + 1, '.') {
                    if let Some(f) = ident(i + 2) {
                        if punct(i + 3, '=') && !punct(i + 4, '=') {
                            shrunk_fields.insert(f);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass B: the main token scan.
    // ------------------------------------------------------------------
    let mut in_use = false;
    for i in 0..toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Punct(';') => in_use = false,
            Tok::Ident(w) => {
                let hot = hot_region(i);
                match w.as_str() {
                    "use" => in_use = true,
                    "Instant" | "SystemTime"
                        if enabled(Rule::NondetTime)
                            && punct(i + 1, ':')
                            && punct(i + 2, ':')
                            && ident(i + 3) == Some("now") =>
                    {
                        raw.push(diag(
                            line,
                            Rule::NondetTime,
                            format!(
                                "{w}::now() reads the wall clock; simulation code must use \
                                 virtual time (SimTime) so runs are reproducible"
                            ),
                        ));
                    }
                    "thread_rng" | "from_entropy" if enabled(Rule::NondetRand) => {
                        raw.push(diag(
                            line,
                            Rule::NondetRand,
                            format!(
                                "{w} draws OS entropy; use the run's seeded SimRng so results \
                                 replay byte-identically"
                            ),
                        ));
                    }
                    "env"
                        if enabled(Rule::NondetEnv)
                            && punct(i + 1, ':')
                            && punct(i + 2, ':')
                            && matches!(
                                ident(i + 3),
                                Some("var" | "var_os" | "vars" | "vars_os")
                            ) =>
                    {
                        raw.push(diag(
                            line,
                            Rule::NondetEnv,
                            format!(
                                "env::{} reads process environment; route knobs through \
                                 crates/bench/src/cli.rs so runs are self-describing",
                                ident(i + 3).unwrap_or("var")
                            ),
                        ));
                    }
                    "HashMap" | "HashSet" if enabled(Rule::NondetHasher) && !in_use => {
                        if let Some(d) = check_default_hasher(toks, i, w, path) {
                            raw.push(d);
                        }
                    }
                    "as" if enabled(Rule::PackingCast) => {
                        if let Some(d) = check_packing_cast(toks, i, path) {
                            raw.push(d);
                        }
                    }
                    "unwrap" | "expect"
                        if hot.is_some()
                            && enabled(Rule::HotPanic)
                            && punct(i.wrapping_sub(1), '.') =>
                    {
                        let r = hot.expect("checked");
                        raw.push(diag(
                            line,
                            Rule::HotPanic,
                            format!(
                                ".{w}() in {} can panic per delivered event; handle the \
                                 None/Err arm or suppress with the invariant as reason",
                                r.describe()
                            ),
                        ));
                    }
                    _ => {}
                }
                // hot-alloc: container construction in hot-reachable code.
                if let Some(r) = hot {
                    if enabled(Rule::HotAlloc) && !in_use {
                        if let Some(what) = check_hot_alloc(toks, i, w) {
                            raw.push(diag(
                                line,
                                Rule::HotAlloc,
                                format!(
                                    "{what} allocates per event in {}; recycle through a \
                                     pooled/scratch buffer or suppress with the amortization \
                                     invariant as reason",
                                    r.describe()
                                ),
                            ));
                        }
                    }
                    // unbounded-growth: `self.<field>.push/insert(...)`
                    // with no shrink evidence for that field in the file.
                    if enabled(Rule::UnboundedGrowth)
                        && GROW_METHODS.contains(&w.as_str())
                        && punct(i + 1, '(')
                        && punct(i.wrapping_sub(1), '.')
                    {
                        if let Some(field) = self_field_receiver(toks, i) {
                            if !shrunk_fields.contains(field) {
                                let field = field.to_owned();
                                raw.push(diag(
                                    line,
                                    Rule::UnboundedGrowth,
                                    format!(
                                        "`self.{field}.{w}(…)` in {} grows a long-lived field \
                                         with no shrink (pop/remove/clear/truncate/drain/retain/\
                                         take) anywhere in this file; bound its retention or \
                                         suppress with the bound as reason",
                                        r.describe()
                                    ),
                                ));
                            }
                        }
                    }
                }
                // float-fold: f64 accumulation over hash-order iteration.
                if enabled(Rule::FloatFold)
                    && matches!(w.as_str(), "sum" | "product" | "fold")
                    && punct(i.wrapping_sub(1), '.')
                    && (punct(i + 1, '(') || (punct(i + 1, ':') && punct(i + 2, ':')))
                {
                    if let Some(d) = check_float_fold(toks, i, w, path, &hashy_vars) {
                        raw.push(d);
                    }
                }
                // unordered-iter: `<hashy>.iter()` (and friends).
                if enabled(Rule::UnorderedIter)
                    && ITER_METHODS.contains(&w.as_str())
                    && punct(i + 1, '(')
                    && punct(i.wrapping_sub(1), '.')
                {
                    if let Some(recv) = ident(i.wrapping_sub(2)) {
                        if hashy_vars.contains(recv) && !statement_is_order_insensitive(toks, i) {
                            raw.push(diag(
                                line,
                                Rule::UnorderedIter,
                                format!(
                                    "iterating hash collection `{recv}` — bucket order is not \
                                     a stable order; sort the result, collect into an ordered \
                                     form, or use an order-insensitive sink"
                                ),
                            ));
                        }
                    }
                }
                // unordered-iter: `for x in &hashy { ... }`.
                if enabled(Rule::UnorderedIter) && w == "in" {
                    let mut j = i + 1;
                    while punct(j, '&') || ident(j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(recv) = ident(j) {
                        if hashy_vars.contains(recv) && punct(j + 1, '{') {
                            raw.push(diag(
                                line,
                                Rule::UnorderedIter,
                                format!(
                                    "for-loop over hash collection `{recv}` visits entries in \
                                     bucket order; iterate a sorted copy or an ordered \
                                     collection instead"
                                ),
                            ));
                        }
                    }
                }
            }
            Tok::Punct('[')
                if enabled(Rule::HotPanic)
                    && hot_region(i).is_some()
                    && matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Ident(_)) | Some(Tok::Punct(')')) | Some(Tok::Punct(']'))
                    )
                    // `x[0]` — a lone integer-literal index addresses a
                    // fixed slot (typically a compile-time-sized array);
                    // flagging it is noise next to data-dependent indexes.
                    && !(matches!(
                        toks.get(i + 1).map(|t| &t.tok),
                        Some(Tok::Num { float: false })
                    ) && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(']')))) =>
            {
                let r = hot_region(i).expect("checked");
                raw.push(diag(
                    line,
                    Rule::HotPanic,
                    format!(
                        "indexing in {} panics on out-of-bounds; use get()/get_mut() or \
                         suppress with the bounds invariant as reason",
                        r.describe()
                    ),
                ));
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Apply suppressions. Three attachment forms:
    //   * same line as the violation;
    //   * the line directly above the violating code;
    //   * directly above an item's first attribute or signature — binds
    //     to the whole item (attributes are transparent: a suppression
    //     above `#[jade_hot]` covers the function, not the attr line).
    // ------------------------------------------------------------------
    let next_code_line =
        |after: u32| -> Option<u32> { toks.iter().map(|t| t.line).find(|&l| l > after) };
    raw.retain(|d| {
        if d.rule == Rule::BadSuppression {
            return true;
        }
        if file_allows.contains(&d.rule) {
            return false;
        }
        !suppressions.iter().any(|(sline, rules)| {
            if !rules.contains(&d.rule) {
                return false;
            }
            if d.line == *sline {
                return true;
            }
            let ncl = next_code_line(*sline);
            if Some(d.line) == ncl {
                return true;
            }
            // Item binding: the next code line is an item's attribute or
            // signature line → the suppression covers the whole item.
            if let Some(ncl) = ncl {
                return items.iter().any(|it| {
                    (it.attr_line == ncl || it.sig_line == ncl)
                        && d.line >= it.attr_line
                        && d.line <= it.end_line
                });
            }
            false
        })
    });
    raw.sort();
    // Two `[` on one line (e.g. `m[a][b]`) would otherwise report twice.
    raw.dedup();
    raw
}

/// `self.a.b.<grow>(…)` receiver detection: returns the grown field (the
/// final segment before the grow method) when the chain is rooted at
/// `self`, i.e. the target is a long-lived struct field rather than a
/// local.
fn self_field_receiver(toks: &[Token], grow_idx: usize) -> Option<&str> {
    let ident = |k: usize| -> Option<&str> {
        toks.get(k).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |k: usize, c: char| matches!(toks.get(k), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
    // grow_idx-1 is the `.`; the field must be a plain ident (indexing or
    // call results in the chain end the field attribution).
    let field = ident(grow_idx.wrapping_sub(2))?;
    let mut k = grow_idx.wrapping_sub(2);
    loop {
        if !punct(k.wrapping_sub(1), '.') {
            return None;
        }
        let prev = ident(k.wrapping_sub(2))?;
        if prev == "self" && !punct(k.wrapping_sub(3), '.') {
            return Some(field);
        }
        k = k.wrapping_sub(2);
    }
}

/// `hot-alloc` detection at identifier token `i`. Returns a short
/// description of the allocating construct.
fn check_hot_alloc(toks: &[Token], i: usize, w: &str) -> Option<String> {
    let ident = |k: usize| -> Option<&str> {
        toks.get(k).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |k: usize, c: char| matches!(toks.get(k), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
    // `vec![…]` / `format!(…)`.
    if ALLOC_MACROS.contains(&w) && punct(i + 1, '!') {
        return Some(format!("`{w}!`"));
    }
    // `.collect()` / `.to_vec()` / `.to_owned()` / `.to_string()`.
    if ALLOC_METHODS.contains(&w) && punct(i + 1, '(') && punct(i.wrapping_sub(1), '.') {
        return Some(format!("`.{w}()`"));
    }
    // `Vec::new()` / `Box::new(…)` / `String::from(…)` /
    // `Vec::<T>::with_capacity(…)`.
    if ALLOC_TYPES.contains(&w) && punct(i + 1, ':') && punct(i + 2, ':') {
        let mut j = i + 3;
        if punct(j, '<') {
            // Skip the turbofish.
            let mut depth = 1i32;
            j += 1;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if !(punct(j, ':') && punct(j + 1, ':')) {
                return None;
            }
            j += 2;
        }
        if let Some(ctor) = ident(j) {
            if ALLOC_CTORS.contains(&ctor) && punct(j + 1, '(') {
                return Some(format!("`{w}::{ctor}(…)`"));
            }
        }
    }
    None
}

/// `float-fold` detection at the `.sum`/`.fold`/`.product` token `i`:
/// fires when the surrounding statement shows both floating-point
/// accumulation (an `f64`/`f32` mention or a float literal) and iteration
/// over a hash collection (whose order `sum`'s escape in
/// `unordered-iter` wrongly blesses for floats).
fn check_float_fold(
    toks: &[Token],
    i: usize,
    w: &str,
    path: &str,
    hashy_vars: &BTreeSet<String>,
) -> Option<Diagnostic> {
    let window = statement_window(toks, i, 64);
    let mut is_float = false;
    let mut hashy: Option<&str> = None;
    let mut iterates = false;
    for k in window.clone() {
        match &toks[k].tok {
            Tok::Num { float: true } => is_float = true,
            Tok::Ident(s) if s == "f64" || s == "f32" => is_float = true,
            Tok::Ident(s) if hashy_vars.contains(s) => hashy = hashy.or(Some(s)),
            Tok::Ident(s) if k < i && ITER_METHODS.contains(&s.as_str()) => iterates = true,
            _ => {}
        }
    }
    if is_float && iterates {
        if let Some(h) = hashy {
            return Some(Diagnostic {
                file: path.to_owned(),
                line: toks[i].line,
                rule: Rule::FloatFold,
                message: format!(
                    ".{w}() accumulates floats over iteration of hash collection `{h}`; \
                     float addition is order-sensitive, so bucket order leaks into the \
                     result — iterate in a pinned (dense-index/sorted) order instead"
                ),
            });
        }
    }
    None
}

/// The token-index window of the statement containing token `i`
/// (bounded scan both ways, stopping at `;`/`{`/`}`).
fn statement_window(toks: &[Token], i: usize, max: usize) -> std::ops::Range<usize> {
    let mut start = i;
    let mut steps = 0;
    while start > 0 && steps < max {
        match &toks[start - 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => {}
        }
        start -= 1;
        steps += 1;
    }
    let mut end = i;
    let mut steps = 0;
    while end + 1 < toks.len() && steps < max {
        match &toks[end + 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => {}
        }
        end += 1;
        steps += 1;
    }
    start..end + 1
}

/// `HashMap`/`HashSet` default-hasher detection at token `i`.
fn check_default_hasher(toks: &[Token], i: usize, name: &str, path: &str) -> Option<Diagnostic> {
    let line = toks[i].line;
    let ident = |k: usize| -> Option<&str> {
        toks.get(k).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |k: usize, c: char| matches!(toks.get(k), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
    let needed_args = if name == "HashMap" { 3 } else { 2 };
    let fix = if name == "HashMap" {
        "jade_sim::det::DetHashMap (or BTreeMap when iterated)"
    } else {
        "jade_sim::det::DetHashSet (or BTreeSet when iterated)"
    };
    // `HashMap::new(...)` / `HashMap::with_capacity(...)`: only defined
    // for RandomState, so these are always the default hasher.
    let mut j = i + 1;
    if punct(j, ':') && punct(j + 1, ':') {
        j += 2;
        if punct(j, '<') {
            // turbofish — fall through to the arity check below
        } else {
            return match ident(j) {
                Some("new") | Some("with_capacity") => Some(Diagnostic {
                    file: path.to_owned(),
                    line,
                    rule: Rule::NondetHasher,
                    message: format!(
                        "{name}::{}() builds a RandomState-hashed {name}; use {fix}",
                        ident(j).unwrap_or("new")
                    ),
                }),
                _ => None,
            };
        }
    }
    // Generic argument list: count top-level commas; fewer than
    // `needed_args` type arguments means the hasher defaulted.
    if punct(j, '<') {
        let mut depth = 1i32;
        let mut commas = 0usize;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct('(') => {
                    // Skip parenthesized (tuple) groups wholesale.
                    let mut pd = 1i32;
                    while k + 1 < toks.len() && pd > 0 {
                        k += 1;
                        match &toks[k].tok {
                            Tok::Punct('(') => pd += 1,
                            Tok::Punct(')') => pd -= 1,
                            _ => {}
                        }
                    }
                }
                Tok::Punct(',') if depth == 1 => commas += 1,
                _ => {}
            }
            k += 1;
        }
        if commas + 1 < needed_args {
            return Some(Diagnostic {
                file: path.to_owned(),
                line,
                rule: Rule::NondetHasher,
                message: format!(
                    "{name} with the default RandomState hasher (no hasher type argument); \
                     use {fix}"
                ),
            });
        }
    }
    None
}

/// Truncating-cast detection at the `as` keyword (token `i`).
fn check_packing_cast(toks: &[Token], i: usize, path: &str) -> Option<Diagnostic> {
    let target = match toks.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if matches!(s.as_str(), "u8" | "u16" | "u32") => s.clone(),
        _ => return None,
    };
    let line = toks[i].line;
    // Back-scan the source expression, collecting identifiers.
    let mut idents: Vec<&str> = Vec::new();
    let mut j = i as isize - 1;
    let boundary;
    loop {
        if j < 0 {
            boundary = None;
            break;
        }
        let k = j as usize;
        match &toks[k].tok {
            Tok::Ident(s) => {
                // Keywords end the expression.
                if matches!(
                    s.as_str(),
                    "as" | "in" | "return" | "if" | "else" | "match" | "let"
                ) {
                    boundary = Some(k);
                    break;
                }
                idents.push(s);
                j -= 1;
            }
            Tok::Num { .. } | Tok::Str | Tok::Char | Tok::Lifetime => j -= 1,
            Tok::Punct('.') => j -= 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                // Skip the balanced group, still collecting identifiers.
                let open = if toks[k].tok == Tok::Punct(')') {
                    '('
                } else {
                    '['
                };
                let close = if open == '(' { ')' } else { ']' };
                let mut depth = 1i32;
                let mut m = j - 1;
                while m >= 0 && depth > 0 {
                    match &toks[m as usize].tok {
                        Tok::Punct(c) if *c == close => depth += 1,
                        Tok::Punct(c) if *c == open => depth -= 1,
                        Tok::Ident(s) => idents.push(s),
                        _ => {}
                    }
                    m -= 1;
                }
                j = m;
            }
            Tok::Punct(_) => {
                boundary = Some(k);
                break;
            }
        }
    }
    let flagged_source = idents.iter().any(|s| is_id_like(s));
    // `IdentEndingInId( <expr> as uN` — construction of an id type.
    let flagged_ctor = match boundary {
        Some(k) if matches!(toks[k].tok, Tok::Punct('(')) => {
            matches!(toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                     Some(Tok::Ident(s)) if s.len() >= 3 && s.ends_with("Id"))
        }
        _ => false,
    };
    // `let <id-like> = <expr> as uN` — assignment into an id binding.
    let flagged_dest = match boundary {
        Some(k) if matches!(toks[k].tok, Tok::Punct('=')) => {
            // Exclude comparisons (`== x as u32`).
            !matches!(
                toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('='))
            ) && matches!(toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                            Some(Tok::Ident(s)) if is_id_like(s))
        }
        _ => false,
    };
    if flagged_source || flagged_ctor || flagged_dest {
        Some(Diagnostic {
            file: path.to_owned(),
            line,
            rule: Rule::PackingCast,
            message: format!(
                "truncating `as {target}` on an id-like integer silently wraps on overflow; \
                 use jade_sim::pack::id_{target} (checked) or move the packing into an \
                 audited packing module"
            ),
        })
    } else {
        None
    }
}

/// Whether the statement containing the iteration at token `i` mentions an
/// order-insensitive sink or an explicit ordering operation (e.g. a
/// `.sum()` at the end, or a `BTreeMap` annotation the result collects
/// into).
fn statement_is_order_insensitive(toks: &[Token], i: usize) -> bool {
    // Backward to the statement start.
    let mut j = i as isize - 1;
    let mut steps_back = 0;
    while j >= 0 && steps_back < 64 {
        match &toks[j as usize].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(s) if ORDER_INSENSITIVE.contains(&s.as_str()) => return true,
            _ => {}
        }
        j -= 1;
        steps_back += 1;
    }
    // Forward to the statement end.
    let mut j = i;
    let mut depth = 0i32;
    let mut steps = 0;
    while j < toks.len() && steps < 64 {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(';') | Tok::Punct('{') if depth == 0 => break,
            Tok::Ident(s) if ORDER_INSENSITIVE.contains(&s.as_str()) => return true,
            _ => {}
        }
        j += 1;
        steps += 1;
    }
    false
}
