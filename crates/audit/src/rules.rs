//! The determinism/simulation-safety rule set.
//!
//! Every rule is a token-pattern match over [`crate::lexer`]'s output,
//! scoped by workspace path (see [`rule_in_scope`]). The rules encode the
//! contract that every committed `results/*.json` digest depends on:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `nondet-time`     | `Instant::now` / `SystemTime::now` outside the bench crate |
//! | `nondet-rand`     | `thread_rng` / `from_entropy` (OS-seeded randomness) |
//! | `nondet-env`      | `std::env::var*` outside `crates/bench/src/cli.rs` |
//! | `nondet-hasher`   | `HashMap`/`HashSet` with the default `RandomState` in digest crates |
//! | `unordered-iter`  | iterating a hash map/set without an ordered sink |
//! | `packing-cast`    | truncating `as` casts on id-like integers outside the packing modules |
//! | `hot-panic`       | `unwrap`/`expect`/indexing inside `#[jade_hot]` functions |
//! | `bad-suppression` | malformed or reason-less `jade-audit:` directives |
//!
//! Suppression grammar (same line or the line directly above the code):
//!
//! ```text
//! // jade-audit: allow(hot-panic, packing-cast): reason the invariant holds
//! ```
//!
//! The reason string is mandatory: a suppression records *why* the code
//! is safe, not just that someone wanted the diagnostic gone. A
//! suppression without a reason is itself a `bad-suppression` violation.

use crate::lexer::{lex, Comment, Tok, Token};
use std::collections::BTreeSet;
use std::fmt;

/// One enforced rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    NondetTime,
    /// OS-seeded randomness (`thread_rng`, `from_entropy`).
    NondetRand,
    /// Process-environment reads (`env::var`, `env::var_os`, …).
    NondetEnv,
    /// Default-`RandomState` hash collections in digest-feeding crates.
    NondetHasher,
    /// Iteration over a hash map/set whose order could leak into results.
    UnorderedIter,
    /// Truncating `as` casts on id-like integers outside packing modules.
    PackingCast,
    /// `unwrap`/`expect`/indexing inside `#[jade_hot]` functions.
    HotPanic,
    /// Malformed `jade-audit:` suppression directives.
    BadSuppression,
}

/// All rules, in diagnostic-sort order.
pub const ALL_RULES: [Rule; 8] = [
    Rule::NondetTime,
    Rule::NondetRand,
    Rule::NondetEnv,
    Rule::NondetHasher,
    Rule::UnorderedIter,
    Rule::PackingCast,
    Rule::HotPanic,
    Rule::BadSuppression,
];

impl Rule {
    /// Stable rule id used in diagnostics, CLI flags and suppressions.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetTime => "nondet-time",
            Rule::NondetRand => "nondet-rand",
            Rule::NondetEnv => "nondet-env",
            Rule::NondetHasher => "nondet-hasher",
            Rule::UnorderedIter => "unordered-iter",
            Rule::PackingCast => "packing-cast",
            Rule::HotPanic => "hot-panic",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// One-line description (for `list-rules`).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NondetTime => "wall-clock reads; simulation code must use virtual time (SimTime)",
            Rule::NondetRand => "OS-seeded randomness; use the run's seeded SimRng",
            Rule::NondetEnv => "environment reads outside crates/bench/src/cli.rs",
            Rule::NondetHasher => {
                "HashMap/HashSet with the default RandomState hasher in digest-feeding crates"
            }
            Rule::UnorderedIter => "hash map/set iteration without an order-insensitive sink",
            Rule::PackingCast => {
                "truncating `as` cast on an id-like integer outside the audited packing modules"
            }
            Rule::HotPanic => "unwrap/expect/indexing inside a #[jade_hot] function",
            Rule::BadSuppression => "malformed or reason-less jade-audit suppression",
        }
    }

    /// Parses a rule id (as used in `allow(...)` and `--disable`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.id() == s.trim())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// How path-based scoping is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeMode {
    /// Workspace layout scoping (digest crates, bench exemptions, packing
    /// modules) — the CI configuration.
    Workspace,
    /// Every enabled rule applies to every file — used for explicit file
    /// arguments and the fixture tests.
    AllFiles,
}

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rules switched off (`--disable <rule>`).
    pub disabled: BTreeSet<Rule>,
    /// Path scoping mode.
    pub scope: ScopeMode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            disabled: BTreeSet::new(),
            scope: ScopeMode::Workspace,
        }
    }
}

/// Crates whose computation feeds run digests: the strict scope.
const DIGEST_SCOPES: [&str; 7] = [
    "crates/sim/",
    "crates/cluster/",
    "crates/core/",
    "crates/tiers/",
    "crates/rubis/",
    "crates/fractal/",
    "src/",
];

/// Hand-audited packing modules allowed to use raw `as` truncation on
/// packed ids (`GenSlab`/`EventToken`/`PsCpu` slot packing, `RequestId`).
const PACKING_MODULES: [&str; 4] = [
    "crates/sim/src/slab.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/cpu.rs",
    "crates/tiers/src/request.rs",
];

fn in_digest_scope(path: &str) -> bool {
    DIGEST_SCOPES.iter().any(|p| path.starts_with(p))
}

/// Whether `rule` applies to the file at workspace-relative `path`.
pub fn rule_in_scope(rule: Rule, path: &str, mode: ScopeMode) -> bool {
    if mode == ScopeMode::AllFiles {
        return true;
    }
    match rule {
        // The bench harness measures wall-clock by design (its numbers are
        // *labelled* wall-clock); everything else runs on virtual time.
        Rule::NondetTime => !path.starts_with("crates/bench/"),
        Rule::NondetRand => true,
        // All environment knobs funnel through the bench CLI module.
        Rule::NondetEnv => path != "crates/bench/src/cli.rs",
        Rule::NondetHasher | Rule::UnorderedIter => in_digest_scope(path),
        Rule::PackingCast => in_digest_scope(path) && !PACKING_MODULES.contains(&path),
        Rule::HotPanic | Rule::BadSuppression => true,
    }
}

/// Parsed `jade-audit:` directive.
enum Directive {
    Allow(Vec<Rule>),
    Hot,
}

/// Parses the directive out of a comment body, if any. `Some(Err)` is a
/// malformed directive (a `bad-suppression` violation).
///
/// Only comments that *start* with `jade-audit:` (after doc-comment
/// decoration) are directives — prose that merely mentions the grammar,
/// like this sentence, is ignored.
fn parse_directive(text: &str) -> Option<Result<Directive, String>> {
    let t = text.trim_start_matches(|c: char| c == '!' || c == '/' || c.is_whitespace());
    let rest = t.strip_prefix("jade-audit:")?.trim();
    if rest == "hot" {
        return Some(Ok(Directive::Hot));
    }
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim_start();
        let Some(inner) = args.strip_prefix('(') else {
            return Some(Err(
                "malformed allow; expected allow(<rule>): <reason>".into()
            ));
        };
        let Some(close) = inner.find(')') else {
            return Some(Err("malformed allow; missing ')'".into()));
        };
        let mut rules = Vec::new();
        for part in inner[..close].split(',') {
            match Rule::parse(part) {
                Some(r) => rules.push(r),
                None => return Some(Err(format!("unknown rule '{}' in allow(...)", part.trim()))),
            }
        }
        if rules.is_empty() {
            return Some(Err("allow(...) names no rule".into()));
        }
        let reason = inner[close + 1..]
            .trim()
            .trim_start_matches([':', '-'])
            .trim();
        if reason.is_empty() {
            return Some(Err(
                "suppression must carry a reason string: allow(<rule>): <why>".into(),
            ));
        }
        return Some(Ok(Directive::Allow(rules)));
    }
    Some(Err(format!("unrecognized jade-audit directive '{rest}'")))
}

/// Identifiers (or snake_case segments) that mark an integer as id-like
/// for the `packing-cast` rule.
fn is_id_like(ident: &str) -> bool {
    if ident.len() >= 3 && ident.ends_with("Id") {
        return true;
    }
    ident.split('_').any(|seg| {
        matches!(
            seg.to_ascii_lowercase().as_str(),
            "id" | "ids"
                | "key"
                | "keys"
                | "slot"
                | "slots"
                | "seq"
                | "gen"
                | "generation"
                | "token"
                | "tokens"
                | "raw"
        )
    })
}

/// Type names treated as hash collections for `unordered-iter` receiver
/// tracking (the det aliases iterate in *reproducible* but still
/// hash-dependent order, so they are hazards too).
const HASHY_TYPES: [&str; 6] = [
    "HashMap",
    "HashSet",
    "DetHashMap",
    "DetHashSet",
    "FxHashMap",
    "FxHashSet",
];

/// Iterator sinks whose result is independent of visit order, accepted as
/// escapes for `unordered-iter` (plus explicit sorts / ordered collects).
const ORDER_INSENSITIVE: [&str; 16] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "sum",
    "min",
    "max",
    "all",
    "any",
    "is_empty",
];

const ITER_METHODS: [&str; 6] = ["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

/// Analyzes one file's source. `path` must be workspace-relative with
/// forward slashes; it is copied into each diagnostic.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let enabled = |r: Rule| !cfg.disabled.contains(&r) && rule_in_scope(r, path, cfg.scope);
    let diag = |line: u32, rule: Rule, message: String| Diagnostic {
        file: path.to_owned(),
        line,
        rule,
        message,
    };

    // ------------------------------------------------------------------
    // Comments: suppressions, hot markers, bad directives.
    // ------------------------------------------------------------------
    let mut suppressions: Vec<(u32, Vec<Rule>)> = Vec::new();
    let mut hot_marker_lines: Vec<u32> = Vec::new();
    for Comment { line, text } in &lexed.comments {
        match parse_directive(text) {
            None => {}
            Some(Ok(Directive::Allow(rules))) => suppressions.push((*line, rules)),
            Some(Ok(Directive::Hot)) => hot_marker_lines.push(*line),
            Some(Err(msg)) if enabled(Rule::BadSuppression) => {
                raw.push(diag(*line, Rule::BadSuppression, msg));
            }
            Some(Err(_)) => {}
        }
    }

    // ------------------------------------------------------------------
    // Pass A: hash-typed names (aliases, fields, lets) for unordered-iter.
    // ------------------------------------------------------------------
    let mut hashy_types: BTreeSet<String> = HASHY_TYPES.iter().map(|s| s.to_string()).collect();
    let mut hashy_vars: BTreeSet<String> = BTreeSet::new();
    let ident = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |i: usize, c: char| matches!(toks.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);

    // Type aliases: `type X = ... Hashy ... ;`
    for i in 0..toks.len() {
        if ident(i) == Some("type") {
            if let Some(name) = ident(i + 1) {
                let mut j = i + 2;
                let mut rhs_hashy = false;
                while j < toks.len() && !punct(j, ';') {
                    if let Some(t) = ident(j) {
                        if hashy_types.contains(t) {
                            rhs_hashy = true;
                        }
                    }
                    j += 1;
                }
                if rhs_hashy {
                    hashy_types.insert(name.to_owned());
                }
            }
        }
    }
    // Declarations: `name: [&mut path::]Hashy<...>` (fields, args, typed
    // lets) and `let [mut] name = [path::]Hashy::...`.
    for i in 0..toks.len() {
        if let Some(name) = ident(i) {
            if punct(i + 1, ':') && !punct(i + 2, ':') && !punct(i, ':') {
                // Walk the type path after the colon.
                let mut j = i + 2;
                let mut steps = 0;
                while j < toks.len() && steps < 16 {
                    match &toks[j].tok {
                        Tok::Ident(t) if t == "mut" || t == "dyn" => j += 1,
                        Tok::Punct('&') | Tok::Lifetime => j += 1,
                        Tok::Ident(t) => {
                            if hashy_types.contains(t) {
                                hashy_vars.insert(name.to_owned());
                                break;
                            }
                            // Follow `path::` segments only.
                            if punct(j + 1, ':') && punct(j + 2, ':') {
                                j += 3;
                            } else {
                                break;
                            }
                        }
                        _ => break,
                    }
                    steps += 1;
                }
            }
            if name == "let" {
                let mut j = i + 1;
                if ident(j) == Some("mut") {
                    j += 1;
                }
                if let Some(var) = ident(j) {
                    if punct(j + 1, '=') && !punct(j + 2, '=') {
                        // First few rhs tokens decide (Hashy::new / default).
                        for k in (j + 2)..(j + 10).min(toks.len()) {
                            if punct(k, '(') || punct(k, ';') {
                                break;
                            }
                            if let Some(t) = ident(k) {
                                if hashy_types.contains(t) {
                                    hashy_vars.insert(var.to_owned());
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass B: the main token scan.
    // ------------------------------------------------------------------
    let mut brace_depth: i32 = 0;
    let mut in_use = false;
    let mut pending_hot = false;
    let mut awaiting_hot_body = false;
    let mut awaiting_paren_depth: i32 = 0;
    let mut hot_depths: Vec<i32> = Vec::new();
    let mut marker_idx = 0usize;
    hot_marker_lines.sort_unstable();

    for i in 0..toks.len() {
        let line = toks[i].line;
        // Comment-style hot markers apply to the next function seen.
        while marker_idx < hot_marker_lines.len() && hot_marker_lines[marker_idx] < line {
            pending_hot = true;
            marker_idx += 1;
        }
        match &toks[i].tok {
            Tok::Punct('{') => {
                brace_depth += 1;
                if awaiting_hot_body && awaiting_paren_depth == 0 {
                    awaiting_hot_body = false;
                    hot_depths.push(brace_depth);
                }
            }
            Tok::Punct('}') => {
                if hot_depths.last() == Some(&brace_depth) {
                    hot_depths.pop();
                }
                brace_depth -= 1;
            }
            Tok::Punct('(') if awaiting_hot_body => awaiting_paren_depth += 1,
            Tok::Punct(')') if awaiting_hot_body => awaiting_paren_depth -= 1,
            Tok::Punct(';') => in_use = false,
            Tok::Punct('#') if punct(i + 1, '[') => {
                // Attribute: look for jade_hot inside the bracket group.
                let mut j = i + 2;
                let mut depth = 1;
                while j < toks.len() && depth > 0 {
                    match &toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        Tok::Ident(s) if s == "jade_hot" && depth == 1 => pending_hot = true,
                        _ => {}
                    }
                    j += 1;
                }
            }
            Tok::Ident(w) => {
                let in_hot = !hot_depths.is_empty();
                match w.as_str() {
                    "use" => in_use = true,
                    "fn" if pending_hot => {
                        pending_hot = false;
                        awaiting_hot_body = true;
                        awaiting_paren_depth = 0;
                    }
                    "Instant" | "SystemTime"
                        if enabled(Rule::NondetTime)
                            && punct(i + 1, ':')
                            && punct(i + 2, ':')
                            && ident(i + 3) == Some("now") =>
                    {
                        raw.push(diag(
                            line,
                            Rule::NondetTime,
                            format!(
                                "{w}::now() reads the wall clock; simulation code must use \
                                 virtual time (SimTime) so runs are reproducible"
                            ),
                        ));
                    }
                    "thread_rng" | "from_entropy" if enabled(Rule::NondetRand) => {
                        raw.push(diag(
                            line,
                            Rule::NondetRand,
                            format!(
                                "{w} draws OS entropy; use the run's seeded SimRng so results \
                                 replay byte-identically"
                            ),
                        ));
                    }
                    "env"
                        if enabled(Rule::NondetEnv)
                            && punct(i + 1, ':')
                            && punct(i + 2, ':')
                            && matches!(
                                ident(i + 3),
                                Some("var" | "var_os" | "vars" | "vars_os")
                            ) =>
                    {
                        raw.push(diag(
                            line,
                            Rule::NondetEnv,
                            format!(
                                "env::{} reads process environment; route knobs through \
                                 crates/bench/src/cli.rs so runs are self-describing",
                                ident(i + 3).unwrap_or("var")
                            ),
                        ));
                    }
                    "HashMap" | "HashSet" if enabled(Rule::NondetHasher) && !in_use => {
                        if let Some(d) = check_default_hasher(toks, i, w, path) {
                            raw.push(d);
                        }
                    }
                    "as" if enabled(Rule::PackingCast) => {
                        if let Some(d) = check_packing_cast(toks, i, path) {
                            raw.push(d);
                        }
                    }
                    "unwrap" | "expect"
                        if in_hot && enabled(Rule::HotPanic) && punct(i.wrapping_sub(1), '.') =>
                    {
                        raw.push(diag(
                            line,
                            Rule::HotPanic,
                            format!(
                                ".{w}() inside a #[jade_hot] function can panic per delivered \
                                 event; handle the None/Err arm or suppress with the invariant \
                                 as reason"
                            ),
                        ));
                    }
                    m if in_hot && enabled(Rule::UnorderedIter) && ITER_METHODS.contains(&m) => {
                        // handled by the generic iter check below (kept
                        // here so hot functions get the same treatment)
                    }
                    _ => {}
                }
                // unordered-iter: `<hashy>.iter()` (and friends).
                if enabled(Rule::UnorderedIter)
                    && ITER_METHODS.contains(&w.as_str())
                    && punct(i + 1, '(')
                    && punct(i.wrapping_sub(1), '.')
                {
                    if let Some(recv) = ident(i.wrapping_sub(2)) {
                        if hashy_vars.contains(recv) && !statement_is_order_insensitive(toks, i) {
                            raw.push(diag(
                                line,
                                Rule::UnorderedIter,
                                format!(
                                    "iterating hash collection `{recv}` — bucket order is not \
                                     a stable order; sort the result, collect into an ordered \
                                     form, or use an order-insensitive sink"
                                ),
                            ));
                        }
                    }
                }
                // unordered-iter: `for x in &hashy { ... }`.
                if enabled(Rule::UnorderedIter) && w == "in" {
                    let mut j = i + 1;
                    while punct(j, '&') || ident(j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(recv) = ident(j) {
                        if hashy_vars.contains(recv) && punct(j + 1, '{') {
                            raw.push(diag(
                                line,
                                Rule::UnorderedIter,
                                format!(
                                    "for-loop over hash collection `{recv}` visits entries in \
                                     bucket order; iterate a sorted copy or an ordered \
                                     collection instead"
                                ),
                            ));
                        }
                    }
                }
            }
            Tok::Punct('[')
                if !hot_depths.is_empty()
                    && enabled(Rule::HotPanic)
                    && matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Ident(_)) | Some(Tok::Punct(')')) | Some(Tok::Punct(']'))
                    ) =>
            {
                raw.push(diag(
                    line,
                    Rule::HotPanic,
                    "indexing inside a #[jade_hot] function panics on out-of-bounds; use \
                     get()/get_mut() or suppress with the bounds invariant as reason"
                        .to_owned(),
                ));
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Apply suppressions: same line, or first token line after the
    // comment line (i.e. the suppression sits directly above the code).
    // ------------------------------------------------------------------
    let next_code_line =
        |after: u32| -> Option<u32> { toks.iter().map(|t| t.line).find(|&l| l > after) };
    raw.retain(|d| {
        if d.rule == Rule::BadSuppression {
            return true;
        }
        !suppressions.iter().any(|(sline, rules)| {
            rules.contains(&d.rule) && (d.line == *sline || Some(d.line) == next_code_line(*sline))
        })
    });
    raw.sort();
    raw
}

/// `HashMap`/`HashSet` default-hasher detection at token `i`.
fn check_default_hasher(toks: &[Token], i: usize, name: &str, path: &str) -> Option<Diagnostic> {
    let line = toks[i].line;
    let ident = |k: usize| -> Option<&str> {
        toks.get(k).and_then(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
    };
    let punct = |k: usize, c: char| matches!(toks.get(k), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
    let needed_args = if name == "HashMap" { 3 } else { 2 };
    let fix = if name == "HashMap" {
        "jade_sim::det::DetHashMap (or BTreeMap when iterated)"
    } else {
        "jade_sim::det::DetHashSet (or BTreeSet when iterated)"
    };
    // `HashMap::new(...)` / `HashMap::with_capacity(...)`: only defined
    // for RandomState, so these are always the default hasher.
    let mut j = i + 1;
    if punct(j, ':') && punct(j + 1, ':') {
        j += 2;
        if punct(j, '<') {
            // turbofish — fall through to the arity check below
        } else {
            return match ident(j) {
                Some("new") | Some("with_capacity") => Some(Diagnostic {
                    file: path.to_owned(),
                    line,
                    rule: Rule::NondetHasher,
                    message: format!(
                        "{name}::{}() builds a RandomState-hashed {name}; use {fix}",
                        ident(j).unwrap_or("new")
                    ),
                }),
                _ => None,
            };
        }
    }
    // Generic argument list: count top-level commas; fewer than
    // `needed_args` type arguments means the hasher defaulted.
    if punct(j, '<') {
        let mut depth = 1i32;
        let mut commas = 0usize;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct('(') => {
                    // Skip parenthesized (tuple) groups wholesale.
                    let mut pd = 1i32;
                    while k + 1 < toks.len() && pd > 0 {
                        k += 1;
                        match &toks[k].tok {
                            Tok::Punct('(') => pd += 1,
                            Tok::Punct(')') => pd -= 1,
                            _ => {}
                        }
                    }
                }
                Tok::Punct(',') if depth == 1 => commas += 1,
                _ => {}
            }
            k += 1;
        }
        if commas + 1 < needed_args {
            return Some(Diagnostic {
                file: path.to_owned(),
                line,
                rule: Rule::NondetHasher,
                message: format!(
                    "{name} with the default RandomState hasher (no hasher type argument); \
                     use {fix}"
                ),
            });
        }
    }
    None
}

/// Truncating-cast detection at the `as` keyword (token `i`).
fn check_packing_cast(toks: &[Token], i: usize, path: &str) -> Option<Diagnostic> {
    let target = match toks.get(i + 1).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if matches!(s.as_str(), "u8" | "u16" | "u32") => s.clone(),
        _ => return None,
    };
    let line = toks[i].line;
    // Back-scan the source expression, collecting identifiers.
    let mut idents: Vec<&str> = Vec::new();
    let mut j = i as isize - 1;
    let boundary;
    loop {
        if j < 0 {
            boundary = None;
            break;
        }
        let k = j as usize;
        match &toks[k].tok {
            Tok::Ident(s) => {
                // Keywords end the expression.
                if matches!(
                    s.as_str(),
                    "as" | "in" | "return" | "if" | "else" | "match" | "let"
                ) {
                    boundary = Some(k);
                    break;
                }
                idents.push(s);
                j -= 1;
            }
            Tok::Num | Tok::Str | Tok::Char | Tok::Lifetime => j -= 1,
            Tok::Punct('.') => j -= 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                // Skip the balanced group, still collecting identifiers.
                let open = if toks[k].tok == Tok::Punct(')') {
                    '('
                } else {
                    '['
                };
                let close = if open == '(' { ')' } else { ']' };
                let mut depth = 1i32;
                let mut m = j - 1;
                while m >= 0 && depth > 0 {
                    match &toks[m as usize].tok {
                        Tok::Punct(c) if *c == close => depth += 1,
                        Tok::Punct(c) if *c == open => depth -= 1,
                        Tok::Ident(s) => idents.push(s),
                        _ => {}
                    }
                    m -= 1;
                }
                j = m;
            }
            Tok::Punct(_) => {
                boundary = Some(k);
                break;
            }
        }
    }
    let flagged_source = idents.iter().any(|s| is_id_like(s));
    // `IdentEndingInId( <expr> as uN` — construction of an id type.
    let flagged_ctor = match boundary {
        Some(k) if matches!(toks[k].tok, Tok::Punct('(')) => {
            matches!(toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                     Some(Tok::Ident(s)) if s.len() >= 3 && s.ends_with("Id"))
        }
        _ => false,
    };
    // `let <id-like> = <expr> as uN` — assignment into an id binding.
    let flagged_dest = match boundary {
        Some(k) if matches!(toks[k].tok, Tok::Punct('=')) => {
            // Exclude comparisons (`== x as u32`).
            !matches!(
                toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('='))
            ) && matches!(toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                            Some(Tok::Ident(s)) if is_id_like(s))
        }
        _ => false,
    };
    if flagged_source || flagged_ctor || flagged_dest {
        Some(Diagnostic {
            file: path.to_owned(),
            line,
            rule: Rule::PackingCast,
            message: format!(
                "truncating `as {target}` on an id-like integer silently wraps on overflow; \
                 use jade_sim::pack::id_{target} (checked) or move the packing into an \
                 audited packing module"
            ),
        })
    } else {
        None
    }
}

/// Whether the statement containing the iteration at token `i` mentions an
/// order-insensitive sink or an explicit ordering operation (e.g. a
/// `.sum()` at the end, or a `BTreeMap` annotation the result collects
/// into).
fn statement_is_order_insensitive(toks: &[Token], i: usize) -> bool {
    // Backward to the statement start.
    let mut j = i as isize - 1;
    let mut steps_back = 0;
    while j >= 0 && steps_back < 64 {
        match &toks[j as usize].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(s) if ORDER_INSENSITIVE.contains(&s.as_str()) => return true,
            _ => {}
        }
        j -= 1;
        steps_back += 1;
    }
    // Forward to the statement end.
    let mut j = i;
    let mut depth = 0i32;
    let mut steps = 0;
    while j < toks.len() && steps < 64 {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(';') | Tok::Punct('{') if depth == 0 => break,
            Tok::Ident(s) if ORDER_INSENSITIVE.contains(&s.as_str()) => return true,
            _ => {}
        }
        j += 1;
        steps += 1;
    }
    false
}
