//! A minimal Rust lexer: just enough tokenization for pattern-level
//! static analysis.
//!
//! The workspace builds fully offline with no external dependencies, so
//! `jade-audit` cannot use `syn`; instead it lexes source text into a
//! flat token stream (identifiers, punctuation, literals) plus a side
//! list of comments, each tagged with its 1-indexed line. This is
//! deliberately *not* a parser: the rule engine in [`crate::rules`]
//! matches token patterns, which is robust against formatting and cheap
//! enough to run on every file of the workspace in milliseconds.
//!
//! Correctness-critical corners the lexer does get right, because getting
//! them wrong would let banned calls hide or produce phantom diagnostics:
//!
//! * string literals (plain, raw `r#"…"#`, byte, C) are skipped as single
//!   tokens — a `"Instant::now"` inside a string is not a violation;
//! * comments (line, nested block) are captured separately — they carry
//!   the `jade-audit:` suppression directives;
//! * char literals are distinguished from lifetimes (`'a'` vs `'a`).

/// Kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Any string literal (contents discarded).
    Str,
    /// Char literal.
    Char,
    /// Numeric literal (digits plus any glued suffix characters).
    /// `float` is true for literals with a decimal point, an exponent or
    /// an `f32`/`f64` suffix — the `float-fold` rule needs to recognize
    /// floating-point accumulation seeds like `0.0`.
    Num {
        /// Whether the literal is floating-point.
        float: bool,
    },
    /// Lifetime (`'a`), label included.
    Lifetime,
}

/// One token with its source line (1-indexed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind/payload.
    pub tok: Tok,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// One comment with its source line (1-indexed) and raw text (without the
/// `//` / `/*` markers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment body text.
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply run to end-of-file (the real compiler reports those).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances over `b[i]`, maintaining the line counter.
    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start_line = line;
            i += 2;
            let text_start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text: src[text_start..i].to_owned(),
            });
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            i += 2;
            let text_start = i;
            let mut depth = 1u32;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            let text_end = if i >= 2 { i - 2 } else { i };
            out.comments.push(Comment {
                line: start_line,
                text: src[text_start..text_end.max(text_start)].to_owned(),
            });
            continue;
        }
        // Identifiers, keywords and string-literal prefixes (r, b, br, c…).
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            let word = &src[start..i];
            // `r"…"`, `b"…"`, `br#"…"#`, `c"…"`: the "identifier" is a
            // literal prefix when a quote (optionally after `#`s for raw
            // strings containing `r`) follows directly.
            let is_prefix = matches!(word, "r" | "b" | "br" | "c" | "cr" | "rb");
            if is_prefix && i < b.len() && (b[i] == b'"' || (word.contains('r') && b[i] == b'#')) {
                let start_line = line;
                // Count leading #s of a raw string.
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < b.len() && b[i] == b'"' {
                    bump!(); // opening quote
                    skip_string_body(b, src, &mut i, &mut line, hashes, word.contains('r'));
                    out.tokens.push(Token {
                        tok: Tok::Str,
                        line: start_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit the `#`s as
                // punctuation and re-lex the identifier.
                for _ in 0..hashes {
                    out.tokens.push(Token {
                        tok: Tok::Punct('#'),
                        line,
                    });
                }
                continue;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(word.to_owned()),
                line,
            });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            let start_line = line;
            bump!();
            skip_string_body(b, src, &mut i, &mut line, 0, false);
            out.tokens.push(Token {
                tok: Tok::Str,
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let start_line = line;
            i += 1;
            if i < b.len() && b[i] == b'\\' {
                // Escaped char literal: skip escape, then to closing quote.
                i += 1;
                if i < b.len() {
                    bump!();
                }
                while i < b.len() && b[i] != b'\'' {
                    bump!();
                }
                if i < b.len() {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: start_line,
                });
            } else if i + 1 < b.len() && b[i + 1] == b'\'' {
                // 'x'
                i += 2;
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: start_line,
                });
            } else if i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphabetic()) {
                // Lifetime or label.
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line: start_line,
                });
            } else {
                // Odd char literal like '(' — consume to closing quote.
                while i < b.len() && b[i] != b'\'' {
                    bump!();
                }
                if i < b.len() {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: start_line,
                });
            }
            continue;
        }
        // Numbers (suffixes glued on; `1..2` stops before the dots).
        if c.is_ascii_digit() {
            let start_line = line;
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                let continues_float = d == b'.'
                    && i + 1 < b.len()
                    && b[i + 1].is_ascii_digit()
                    && !src[..i].ends_with('.');
                if d == b'_' || d.is_ascii_alphanumeric() || continues_float {
                    i += 1;
                } else {
                    break;
                }
            }
            let text = &src[start..i];
            // Hex/octal/binary literals never float; `0x1E` is not an
            // exponent and `0b1.` cannot lex.
            let float =
                !(text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b"))
                    && (text.contains('.')
                        || text.contains('e')
                        || text.contains('E')
                        || text.ends_with("f32")
                        || text.ends_with("f64"));
            out.tokens.push(Token {
                tok: Tok::Num { float },
                line: start_line,
            });
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token {
            tok: Tok::Punct(c as char),
            line,
        });
        bump!();
    }
    out
}

/// Skips a string body whose opening quote has been consumed. `hashes` is
/// the number of `#`s of a raw string (0 for plain); `raw` disables
/// escape processing.
fn skip_string_body(b: &[u8], _src: &str, i: &mut usize, line: &mut u32, hashes: usize, raw: bool) {
    while *i < b.len() {
        let c = b[*i];
        if c == b'\n' {
            *line += 1;
            *i += 1;
            continue;
        }
        if !raw && c == b'\\' {
            // A line-continuation escape (`\` before a newline) still
            // advances the line counter — without this, every token after
            // such a string reported a line one short.
            if b.get(*i + 1) == Some(&b'\n') {
                *line += 1;
            }
            *i += 2;
            continue;
        }
        if c == b'"' {
            // Raw strings close only on `"` followed by the right number
            // of `#`s.
            let mut ok = true;
            for k in 0..hashes {
                if b.get(*i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                *i += 1 + hashes;
                return;
            }
        }
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "Instant::now()"; // Instant::now in a comment
            let b = r#"thread_rng"#;
            /* HashMap::new() */
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant" || s == "thread_rng"));
        assert!(ids.contains(&"let".to_owned()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
        assert!(lexed.comments[1].text.contains("HashMap::new"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still */ fin");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fin"), vec!["fin".to_owned()]);
    }

    #[test]
    fn raw_strings_with_hashes_close_on_matching_delimiter() {
        // `"#` inside an `r##"…"##` body must not close the literal.
        let src = "let a = r##\"quote\"# still inside\"##; next";
        let lexed = lex(src);
        assert_eq!(idents(src), vec!["let", "a", "next"]);
        assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count(), 1);
        // byte-raw and C-raw prefixes take the same path.
        assert_eq!(idents("let b = br#\"x\"#; done"), vec!["let", "b", "done"]);
        assert_eq!(idents("let c = cr#\"x\"#; done"), vec!["let", "c", "done"]);
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "let a = r#\"line\nline\nline\"#;\nfin";
        let lexed = lex(src);
        let fin = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("fin".into()))
            .expect("fin token");
        assert_eq!(fin.line, 4);
    }

    #[test]
    fn line_continuation_escapes_count_lines() {
        // `\` before a newline is an escape *of the newline*: the next
        // token is still on a later physical line.
        let src = "let a = \"one\\\ntwo\";\nfin";
        let lexed = lex(src);
        let fin = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("fin".into()))
            .expect("fin token");
        assert_eq!(fin.line, 3, "escaped newline must advance the line counter");
    }

    #[test]
    fn char_literals_and_lifetimes_in_tricky_positions() {
        // quote-char literal, escaped-quote literal, lifetime after `<`,
        // label, and a char comparison after `<`.
        let src = "fn f<'a>(x: &'a str) { 'l: loop { if c < 'z' { break 'l; } } let q = '\\''; let d = '\"'; }";
        let lexed = lex(src);
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(chars, 3, "'z', '\\'' and '\"' are char literals");
        assert_eq!(lifetimes, 4, "'a twice, 'l twice");
        // Nothing was mistaken for a string opener.
        assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count(), 0);
    }

    #[test]
    fn float_classification() {
        let float_of = |src: &str| -> Vec<bool> {
            lex(src)
                .tokens
                .iter()
                .filter_map(|t| match t.tok {
                    Tok::Num { float } => Some(float),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(
            float_of("1 2.5 0.0 1e3 7f64 3f32"),
            vec![false, true, true, true, true, true]
        );
        // Hex digits that look like exponents or suffixes stay integral.
        assert_eq!(
            float_of("0x1E 0xf64 0b101 0o17"),
            vec![false, false, false, false]
        );
        // Range expressions stay split and integral.
        assert_eq!(float_of("0..10"), vec![false, false]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("0..10");
        let puncts = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(puncts, 2);
        assert!(lex("1.5e3").tokens.len() <= 3, "float stays one-ish token");
    }
}
