//! Workspace symbol table, call graph and hot-path reachability.
//!
//! `#[jade_hot]` marks the event-loop entry points (engine
//! `step`/`run_until`, `System::handle`, `on_db_dispatch`), but those
//! roots execute through dozens of helpers per delivered event. The hot
//! contract (no panics, no steady-state allocation, no unbounded growth)
//! is a property of everything *reachable* from the roots, not of the
//! four annotated bodies — this module computes that closure.
//!
//! Resolution is name-based and tiered by precision:
//!
//! * `Type::method(...)` resolves to methods of `Type` (with `Self`
//!   substituted from the calling function's impl block);
//! * `path::func(...)` falls back to free functions named `func`;
//! * `self.method(...)` resolves through the calling function's impl
//!   type;
//! * `.method(...)` on any other receiver resolves only when the method
//!   name has a **unique** definition in the workspace — distinctive
//!   helper names link, std-shadowing names (`push`, `get`, `write`, …)
//!   deliberately resolve nowhere, because linking every same-named
//!   method would drown the hot rules in false fan-out;
//! * `func(...)` resolves to free functions named `func`.
//!
//! `#[cold]` functions are propagation barriers: they are by declaration
//! not on the steady-state path (grow fallbacks, error reporting), so
//! hotness neither enters nor flows through them.

use crate::lexer::{Tok, Token};
use crate::parse::{is_keyword, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// A function in the workspace-wide symbol table.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index of the file (into the caller-supplied file list).
    pub file: usize,
    /// Index into that file's parsed items.
    pub item: usize,
}

/// Why a function is hot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HotCause {
    /// Textually annotated (`#[jade_hot]` / `// jade-audit: hot`).
    Root,
    /// Reachable from a root; the payload is the qualified name of the
    /// immediate caller that propagated hotness (for diagnostics).
    Via(String),
}

/// The computed hot-reachable set over a set of parsed files.
#[derive(Debug, Default)]
pub struct HotSet {
    /// fn id (global, see [`CallGraph::fn_id`]) → cause.
    pub hot: BTreeMap<usize, HotCause>,
}

/// Call graph over all files of one analysis run.
pub struct CallGraph {
    /// Per-file starting offset into the global fn-id space.
    offsets: Vec<usize>,
    /// All functions, globally indexed.
    pub fns: Vec<FnSym>,
    /// Adjacency: caller fn id → callee fn ids.
    edges: Vec<BTreeSet<usize>>,
}

impl CallGraph {
    /// Global id of `item_idx` within `file_idx`.
    pub fn fn_id(&self, file_idx: usize, item_idx: usize) -> usize {
        self.offsets[file_idx] + item_idx
    }

    /// Builds the symbol table and call edges. `files` pairs each file's
    /// token stream with its parsed items.
    pub fn build(files: &[(&[Token], &[FnItem])]) -> CallGraph {
        let mut offsets = Vec::with_capacity(files.len());
        let mut fns = Vec::new();
        for (fi, (_, items)) in files.iter().enumerate() {
            offsets.push(fns.len());
            for ii in 0..items.len() {
                fns.push(FnSym { file: fi, item: ii });
            }
        }
        // Name indexes. `free`: functions outside impl blocks; `method`:
        // functions inside one; `qual`: (self type, name).
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, sym) in fns.iter().enumerate() {
            let it = &files[sym.file].1[sym.item];
            match &it.self_ty {
                Some(ty) => {
                    method.entry(&it.name).or_default().push(id);
                    qual.entry((ty.as_str(), &it.name)).or_default().push(id);
                }
                None => free.entry(&it.name).or_default().push(id),
            }
        }

        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
        for (id, sym) in fns.iter().enumerate() {
            let (toks, items) = files[sym.file];
            let it = &items[sym.item];
            let Some((b0, b1)) = it.body else { continue };
            let self_ty = it.self_ty.as_deref();
            let ident = |k: usize| -> Option<&str> {
                toks.get(k).and_then(|t| match &t.tok {
                    Tok::Ident(s) => Some(s.as_str()),
                    _ => None,
                })
            };
            let punct = |k: usize, c: char| matches!(toks.get(k), Some(Token { tok: Tok::Punct(p), .. }) if *p == c);
            for k in (b0 + 1)..b1 {
                let Some(name) = ident(k) else { continue };
                // `name!(...)` macros are excluded for free: the `!`
                // sits between the ident and the paren.
                if is_keyword(name) || !punct(k + 1, '(') {
                    continue;
                }
                let callees: &[usize] = if punct(k.wrapping_sub(1), '.') {
                    // `self.method(` — the caller's own impl type.
                    let on_self =
                        ident(k.wrapping_sub(2)) == Some("self") && !punct(k.wrapping_sub(3), '.');
                    let via_self = if on_self {
                        self_ty.and_then(|ty| qual.get(&(ty, name)))
                    } else {
                        None
                    };
                    match via_self {
                        Some(v) => v.as_slice(),
                        // `.method(` on another receiver — link only an
                        // unambiguous (workspace-unique) method name.
                        None => match method.get(name) {
                            Some(v) if v.len() == 1 => v.as_slice(),
                            _ => &[],
                        },
                    }
                } else if punct(k.wrapping_sub(1), ':') && punct(k.wrapping_sub(2), ':') {
                    // `Qualifier::name(` — use the segment before `::`.
                    let q = ident(k.wrapping_sub(3));
                    let q = match q {
                        Some("Self") => self_ty,
                        other => other,
                    };
                    match q.and_then(|q| qual.get(&(q, name))) {
                        Some(v) => v.as_slice(),
                        // `module::func(` — fall back to free functions.
                        None => free.get(name).map(Vec::as_slice).unwrap_or(&[]),
                    }
                } else {
                    free.get(name).map(Vec::as_slice).unwrap_or(&[])
                };
                for &c in callees {
                    if c != id {
                        edges[id].insert(c);
                    }
                }
            }
        }
        CallGraph {
            offsets,
            fns,
            edges,
        }
    }

    /// BFS from the textually marked roots, skipping `#[cold]` barriers.
    pub fn hot_reachability(&self, files: &[(&[Token], &[FnItem])]) -> HotSet {
        let item = |id: usize| -> &FnItem {
            let sym = &self.fns[id];
            &files[sym.file].1[sym.item]
        };
        let mut hot: BTreeMap<usize, HotCause> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for id in 0..self.fns.len() {
            if item(id).hot_marked {
                hot.insert(id, HotCause::Root);
                queue.push(id);
            }
        }
        while let Some(id) = queue.pop() {
            let via = item(id).qualified_name();
            for &callee in &self.edges[id] {
                if item(callee).cold || hot.contains_key(&callee) {
                    continue;
                }
                hot.insert(callee, HotCause::Via(via.clone()));
                queue.push(callee);
            }
        }
        HotSet { hot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn hot_names(src: &str) -> Vec<(String, bool)> {
        let lexed = lex(src);
        let items = parse_items(&lexed, &[]);
        let files = vec![(lexed.tokens.as_slice(), items.as_slice())];
        let cg = CallGraph::build(&files);
        let hs = cg.hot_reachability(&files);
        let mut names: Vec<(String, bool)> = hs
            .hot
            .iter()
            .map(|(&id, cause)| {
                let sym = &cg.fns[id];
                (
                    files[sym.file].1[sym.item].qualified_name(),
                    *cause == HotCause::Root,
                )
            })
            .collect();
        names.sort();
        names
    }

    #[test]
    fn transitive_free_calls_inherit_hotness() {
        let names = hot_names(
            "#[jade_hot]\n\
             fn root() { helper(1); }\n\
             fn helper(x: u32) -> u32 { leaf(x) }\n\
             fn leaf(x: u32) -> u32 { x }\n\
             fn unrelated() {}\n",
        );
        let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(flat, vec!["helper", "leaf", "root"]);
        assert!(names.iter().find(|(n, _)| n == "root").unwrap().1);
        assert!(!names.iter().find(|(n, _)| n == "leaf").unwrap().1);
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let names = hot_names(
            "struct S;\n\
             impl S {\n\
                 #[jade_hot]\n\
                 fn root(&self) { self.step(); S::assoc(); Self::also(); }\n\
                 fn step(&self) {}\n\
                 fn assoc() {}\n\
                 fn also() {}\n\
                 fn never(&self) {}\n\
             }\n",
        );
        let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(flat, vec!["S::also", "S::assoc", "S::root", "S::step"]);
    }

    #[test]
    fn cold_is_a_propagation_barrier() {
        let names = hot_names(
            "#[jade_hot]\n\
             fn root() { grow(); }\n\
             #[cold]\n\
             fn grow() { deep(); }\n\
             fn deep() {}\n",
        );
        let flat: Vec<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(flat, vec!["root"]);
    }

    #[test]
    fn recursion_terminates() {
        let names = hot_names(
            "#[jade_hot]\n\
             fn a() { b(); }\n\
             fn b() { a(); b(); }\n",
        );
        assert_eq!(names.len(), 2);
    }
}
